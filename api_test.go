package acutemon_test

// The Session API contract test: every registered (backend × method)
// pair goes through Run with one set of semantics — cancelled contexts
// abort cleanly, zero-value specs error instead of panicking, sinks see
// every probe, and the deprecated per-tool wrappers stay pinned to
// their historic signatures while delegating to Run.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
	"time"

	acutemon "repro"
)

// Compile-time pins: the deprecated facade wrappers keep their historic
// signatures (and the new pipeline its contract) — a redesign that
// breaks any of these fails to build, not at runtime.
var (
	_ func(context.Context, acutemon.SessionSpec) (*acutemon.SessionResult, error) = acutemon.Run

	_ func(*acutemon.Testbed, acutemon.Config) *acutemon.Result                                                    = acutemon.Measure
	_ func(*acutemon.Testbed, acutemon.Config, acutemon.CalibrateOptions) (*acutemon.Result, acutemon.Calibration) = acutemon.MeasureCalibrated
	_ func(*acutemon.Testbed, int, time.Duration) *acutemon.ToolResult                                             = acutemon.Ping
	_ func(*acutemon.Testbed, int, time.Duration) *acutemon.ToolResult                                             = acutemon.HTTPing
	_ func(*acutemon.Testbed, int, time.Duration) *acutemon.ToolResult                                             = acutemon.JavaPing
	_ func(*acutemon.Testbed, int, time.Duration) *acutemon.ToolResult                                             = acutemon.Ping2
	_ func(context.Context, acutemon.LiveConfig) (*acutemon.LiveResult, error)                                     = acutemon.LiveMeasure
)

func TestRegistriesComplete(t *testing.T) {
	wantMethods := []string{"acutemon", "httping", "javaping", "ping", "ping2"}
	methods := acutemon.Methods()
	if len(methods) != len(wantMethods) {
		t.Fatalf("Methods() = %d entries, want %v", len(methods), wantMethods)
	}
	for i, m := range methods {
		if m.Name() != wantMethods[i] {
			t.Errorf("method %d = %q, want %q", i, m.Name(), wantMethods[i])
		}
		if m.Description() == "" {
			t.Errorf("method %s has no description", m.Name())
		}
		if _, ok := acutemon.MethodByName(m.Name()); !ok {
			t.Errorf("MethodByName(%q) failed", m.Name())
		}
	}
	wantBackends := []string{"cellular", "live", "sim"}
	backends := acutemon.Backends()
	if len(backends) != len(wantBackends) {
		t.Fatalf("Backends() = %d entries, want %v", len(backends), wantBackends)
	}
	for i, b := range backends {
		if b.Name() != wantBackends[i] {
			t.Errorf("backend %d = %q, want %q", i, b.Name(), wantBackends[i])
		}
		if _, ok := acutemon.BackendByName(b.Name()); !ok {
			t.Errorf("BackendByName(%q) failed", b.Name())
		}
	}
	if _, ok := acutemon.MethodByName("traceroute"); ok {
		t.Error("unknown method resolved")
	}
	if _, ok := acutemon.BackendByName("satellite"); ok {
		t.Error("unknown backend resolved")
	}
}

func TestRunRejectsBadSpecs(t *testing.T) {
	ctx := context.Background()
	if _, err := acutemon.Run(ctx, acutemon.SessionSpec{}); err == nil {
		t.Error("zero-value spec accepted")
	}
	if _, err := acutemon.Run(ctx, acutemon.SessionSpec{Backend: "sim"}); err == nil {
		t.Error("missing method accepted")
	}
	if _, err := acutemon.Run(ctx, acutemon.SessionSpec{Method: "ping"}); err == nil {
		t.Error("missing backend accepted")
	}
	if _, err := acutemon.Run(ctx, acutemon.SessionSpec{Backend: "satellite", Method: "ping"}); err == nil {
		t.Error("unknown backend accepted")
	}
	if _, err := acutemon.Run(ctx, acutemon.SessionSpec{Backend: "sim", Method: "traceroute"}); err == nil {
		t.Error("unknown method accepted")
	}
	if _, err := acutemon.Run(ctx, acutemon.SessionSpec{Backend: "sim", Method: "acutemon", Probe: "warp"}); err == nil {
		t.Error("unknown probe accepted")
	}
	if _, err := acutemon.Run(ctx, acutemon.SessionSpec{Backend: "live", Method: "ping"}); err == nil {
		t.Error("live spec without target accepted")
	}
	if _, err := acutemon.Run(ctx, acutemon.SessionSpec{Backend: "cellular", Method: "ping", Radio: "5g"}); err == nil {
		t.Error("unknown radio accepted")
	}
	if _, err := acutemon.Run(ctx, acutemon.SessionSpec{Backend: "sim", Method: "acutemon", Phone: "Nokia 3310"}); err == nil {
		t.Error("unknown phone accepted")
	}
}

// TestRunCancelledContextEveryPair exercises every registered
// (backend × method) pair with an already-cancelled context: Run must
// return context.Canceled without building an environment, running a
// probe, or panicking.
func TestRunCancelledContextEveryPair(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, b := range acutemon.Backends() {
		for _, m := range acutemon.Methods() {
			spec := acutemon.SessionSpec{Backend: b.Name(), Method: m.Name()}
			if b.Name() == "live" {
				// Never dialed: the cancelled ctx aborts first.
				spec.Target = "127.0.0.1:9"
			}
			res, err := acutemon.Run(ctx, spec)
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%s×%s: err = %v, want context.Canceled", b.Name(), m.Name(), err)
			}
			if res != nil {
				t.Errorf("%s×%s: got a result from a pre-cancelled run", b.Name(), m.Name())
			}
		}
	}
}

// countingSink counts observations and checks stream invariants.
type countingSink struct {
	n    int
	ok   int
	last int
}

func (c *countingSink) OnSample(o acutemon.SessionObservation) {
	c.n++
	c.last = o.Seq
	if o.OK {
		c.ok++
	}
}

// TestRunSimEveryMethod runs every method on the sim backend through
// Run with a counting sink: one observation per probe, records matching
// the stream, canonical Sent/Lost arithmetic, and per-layer attribution
// present.
func TestRunSimEveryMethod(t *testing.T) {
	for _, m := range acutemon.Methods() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			sink := &countingSink{}
			res, err := acutemon.Run(context.Background(), acutemon.SessionSpec{
				Backend:  "sim",
				Method:   m.Name(),
				K:        5,
				Interval: 50 * time.Millisecond,
				Seed:     21,
				Sink:     sink,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Backend != "sim" || res.Method != m.Name() {
				t.Errorf("result labeled %s×%s", res.Backend, res.Method)
			}
			if res.Sent != 5 {
				t.Errorf("sent = %d, want 5", res.Sent)
			}
			if sink.n != len(res.Records) {
				t.Errorf("sink saw %d observations, records hold %d", sink.n, len(res.Records))
			}
			if got := len(res.Sample()); got != sink.ok || got != res.Sent-res.Lost {
				t.Errorf("sample=%d sinkOK=%d sent-lost=%d", got, sink.ok, res.Sent-res.Lost)
			}
			if res.Analyze().Layers == nil || len(res.Layers.Du) == 0 {
				t.Error("sim session carries no layer attribution")
			}
			if !res.Analyze().PSMActive {
				t.Error("settled sim phone should show PSM activity (and Analyze must be idempotent)")
			}
			if res.Raw == nil {
				t.Error("backend-native result missing")
			}
		})
	}
}

// TestRunLiveEveryMethod runs every method on the live backend against
// the loopback measurement servers.
func TestRunLiveEveryMethod(t *testing.T) {
	srv, err := acutemon.StartLiveServers("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, m := range acutemon.Methods() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			sink := &countingSink{}
			res, err := acutemon.Run(context.Background(), acutemon.SessionSpec{
				Backend:            "live",
				Method:             m.Name(),
				Target:             srv.Addr(),
				WarmupAddr:         srv.Addr(),
				K:                  3,
				Interval:           time.Millisecond,
				WarmupDelay:        2 * time.Millisecond,
				BackgroundInterval: 5 * time.Millisecond,
				Sink:               sink,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Sent != 3 || res.Lost != 0 {
				t.Errorf("sent=%d lost=%d, want 3/0", res.Sent, res.Lost)
			}
			if sink.n != 3 || sink.ok != 3 {
				t.Errorf("sink saw %d/%d observations", sink.ok, sink.n)
			}
			if res.Analyze().Layers != nil {
				t.Error("live session claims layer attribution (no sniffers exist)")
			}
			for _, o := range res.Records {
				if o.RTT <= 0 || o.RTT > time.Second {
					t.Errorf("probe %d rtt = %v", o.Seq, o.RTT)
				}
			}
		})
	}
}

// TestRunCellular checks the cellular backend runs its sim-compatible
// methods and cleanly refuses the rest.
func TestRunCellular(t *testing.T) {
	for _, name := range []string{"acutemon", "ping"} {
		sink := &countingSink{}
		res, err := acutemon.Run(context.Background(), acutemon.SessionSpec{
			Backend:  "cellular",
			Method:   name,
			Radio:    "lte",
			K:        4,
			Interval: 100 * time.Millisecond,
			Seed:     3,
			Sink:     sink,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Sent != 4 || sink.n != 4 {
			t.Errorf("%s: sent=%d sink=%d, want 4/4", name, res.Sent, sink.n)
		}
		if got := len(res.Sample()); got != sink.ok {
			t.Errorf("%s: sample=%d sinkOK=%d", name, got, sink.ok)
		}
	}
	for _, name := range []string{"httping", "javaping", "ping2"} {
		_, err := acutemon.Run(context.Background(), acutemon.SessionSpec{
			Backend: "cellular", Method: name, K: 2,
		})
		if !errors.Is(err, acutemon.ErrUnsupported) {
			t.Errorf("%s on cellular: err = %v, want ErrUnsupported", name, err)
		}
	}
	// The A/B ablation arm must be honoured on every backend: no
	// warm-up, no background stream.
	res, err := acutemon.Run(context.Background(), acutemon.SessionSpec{
		Backend: "cellular", Method: "acutemon", K: 3, NoBackground: true, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BackgroundSent != 0 {
		t.Errorf("NoBackground cellular run sent %d background packets", res.BackgroundSent)
	}
}

// TestDeprecatedWrappersDelegate confirms the old facade entry points
// produce through the new pipeline: the unwrapped backend-native
// results keep their historic shapes and values.
func TestDeprecatedWrappersDelegate(t *testing.T) {
	cfg := acutemon.DefaultTestbedConfig()
	cfg.Seed = 77
	tb := acutemon.NewTestbed(cfg)
	tb.Sim.RunUntil(300 * time.Millisecond)
	res := acutemon.Measure(tb, acutemon.Config{K: 10})
	if len(res.Records) != 10 || res.Tool != "acutemon" {
		t.Fatalf("Measure: %d records, tool %q", len(res.Records), res.Tool)
	}
	if res.BackgroundSent == 0 {
		t.Error("Measure lost the BT accounting through the pipeline")
	}

	tb2 := acutemon.NewTestbed(acutemon.DefaultTestbedConfig())
	ping := acutemon.Ping(tb2, 5, 20*time.Millisecond)
	if ping.Tool != "ping" || ping.Sent != 5 {
		t.Fatalf("Ping: tool=%q sent=%d", ping.Tool, ping.Sent)
	}
	if du, _, _ := acutemon.ToolLayerSamples(tb2, ping); len(du) == 0 {
		t.Error("Ping result lost layer extraction compatibility")
	}
}

// TestDeprecatedRegistryFacades pins the legacy calibration-database
// surface compile-time: Registry and ShardedRegistry are now thin
// views over the device-knowledge store, but every historic method
// keeps its exact signature and the JSON file format is unchanged.
func TestDeprecatedRegistryFacades(t *testing.T) {
	// Compile-time signature pins (like the PR 4 facade pins): a drift
	// in any deprecated method breaks this assignment list.
	var (
		_ func() *acutemon.Registry                                                                    = acutemon.NewRegistry
		_ func(io.Reader) (*acutemon.Registry, error)                                                  = acutemon.LoadRegistry
		_ func(int) *acutemon.ShardedRegistry                                                          = acutemon.NewShardedRegistry
		_ func(r *acutemon.Registry, e acutemon.RegistryEntry) error                                   = (*acutemon.Registry).Put
		_ func(r *acutemon.Registry) int                                                               = (*acutemon.Registry).Len
		_ func(r *acutemon.Registry, m string, base acutemon.Config) (acutemon.Config, bool)           = (*acutemon.Registry).ConfigFor
		_ func(s *acutemon.ShardedRegistry, e acutemon.RegistryEntry) error                            = (*acutemon.ShardedRegistry).Record
		_ func(s *acutemon.ShardedRegistry) *acutemon.Registry                                         = (*acutemon.ShardedRegistry).Snapshot
		_ func(s *acutemon.ShardedRegistry, r *acutemon.Registry) error                                = (*acutemon.ShardedRegistry).Load
		_ func(s *acutemon.ShardedRegistry) *acutemon.KnowledgeStore                                   = (*acutemon.ShardedRegistry).Store
		_ func(s *acutemon.ShardedRegistry, m string) (acutemon.RegistryEntry, bool)                   = (*acutemon.ShardedRegistry).Lookup
		_ func(st *acutemon.KnowledgeStore) []acutemon.DeviceProfile                                   = (*acutemon.KnowledgeStore).Profiles
		_ func(st *acutemon.KnowledgeStore, e acutemon.RegistryEntry) error                            = (*acutemon.KnowledgeStore).RecordCalibration
		_ func(st *acutemon.KnowledgeStore, o *acutemon.KnowledgeStore) error                          = (*acutemon.KnowledgeStore).Merge
		_ func(st *acutemon.KnowledgeStore, m string) (acutemon.RegistryEntry, bool)                   = (*acutemon.KnowledgeStore).Calibration
		_ func(st *acutemon.KnowledgeStore, m, chip string) (time.Duration, acutemon.CorrectionSource) = (*acutemon.KnowledgeStore).Resolve
	)

	// The view and the store share state: a Record through the facade
	// is visible as a DeviceProfile, and the old JSON array format
	// round-trips.
	reg := acutemon.NewShardedRegistry(0)
	e := acutemon.RegistryEntry{
		Model: "Pin Phone", Chipset: "BCM-pin",
		Tip: 200 * time.Millisecond, Tis: 300 * time.Millisecond,
		Warmup: 20 * time.Millisecond, Interval: 20 * time.Millisecond, Samples: 3,
	}
	if err := reg.Record(e); err != nil {
		t.Fatal(err)
	}
	p, ok := reg.Store().Lookup("Pin Phone")
	if !ok || p.CalEntry != e {
		t.Fatalf("facade record invisible in store: %+v", p)
	}
	var buf bytes.Buffer
	if err := reg.Snapshot().Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := acutemon.LoadRegistry(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := back.Get("Pin Phone"); !ok || got != e {
		t.Fatalf("registry JSON round trip: %+v ok=%v", got, ok)
	}
}

// TestFeedKnowledgeFacade runs one sim session with a Knowledge store
// attached and confirms the attribution landed.
func TestFeedKnowledgeFacade(t *testing.T) {
	st := acutemon.NewKnowledgeStore(0)
	res, err := acutemon.Run(context.Background(), acutemon.SessionSpec{
		Backend: "sim", Method: "acutemon", K: 5, Seed: 3, Knowledge: st,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 5 {
		t.Fatalf("sent %d", res.Sent)
	}
	p, ok := st.Lookup("Google Nexus 5")
	if !ok || p.AttributionSessions() != 1 || p.Chipset == "" {
		t.Fatalf("knowledge not fed: ok=%v %+v", ok, p)
	}
	if corr, src := st.Resolve("Google Nexus 5", ""); src != acutemon.CorrectionLearned || corr < 0 {
		t.Fatalf("resolve: %v/%v", corr, src)
	}
}

// TestRunMixedCampaign is the facade-level acceptance check that a
// fleet campaign can mix methods via SessionSpec-backed sessions.
func TestRunMixedCampaign(t *testing.T) {
	sc, ok := acutemon.CampaignScenarioByName("tool-mix")
	if !ok {
		t.Fatal("tool-mix scenario not exported")
	}
	rep, err := acutemon.RunCampaign(acutemon.Campaign{
		Name:     "mix",
		Scenario: "tool-mix",
		Seed:     9,
		Sessions: sc.Build(acutemon.CampaignParams{Sessions: 5, Seed: 9, Probes: 5}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Groups) != 5 || rep.Errors != 0 {
		t.Fatalf("groups=%d errors=%d, want 5 method groups", len(rep.Groups), rep.Errors)
	}
}

// trippingCtx reports cancellation after its Err method has been
// consulted trip times — a deterministic way to land a cancellation in
// the middle of a virtual-time simulation drive (wall-clock timeouts
// would race the simulator).
type trippingCtx struct {
	context.Context
	calls, trip int
}

func (c *trippingCtx) Err() error {
	c.calls++
	if c.calls >= c.trip {
		return context.Canceled
	}
	return nil
}

// TestRunSimCancelledMidRun pins the partial-result contract on the sim
// backend: cancellation returns the probes that resolved, counts no
// unresolved probe as lost, and streams only completed probes to the
// sink — the same semantics the cellular backend documents.
func TestRunSimCancelledMidRun(t *testing.T) {
	sink := &countingSink{}
	ctx := &trippingCtx{Context: context.Background(), trip: 10}
	res, err := acutemon.Run(ctx, acutemon.SessionSpec{
		Backend:  "sim",
		Method:   "ping",
		K:        50,
		Interval: 50 * time.Millisecond,
		Seed:     5,
		Sink:     sink,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("mid-run cancellation must return the partial result")
	}
	if res.Sent >= 50 {
		t.Fatalf("sent = %d; cancellation landed after the whole run", res.Sent)
	}
	if res.Lost != 0 {
		t.Errorf("unresolved probes counted as lost: %d", res.Lost)
	}
	if sink.n != sink.ok {
		t.Errorf("sink streamed %d observations but only %d completed probes", sink.n, sink.ok)
	}
	if len(res.Records) != sink.n {
		t.Errorf("records=%d sink=%d; Records must equal the sink stream even on partials", len(res.Records), sink.n)
	}
	if got := len(res.Sample()); got != sink.ok {
		t.Errorf("sample=%d sinkOK=%d", got, sink.ok)
	}
}
