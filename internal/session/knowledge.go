package session

import (
	"repro/internal/android"
	"repro/internal/puncture"
)

// FeedKnowledge runs the deferred capture analysis on res and folds its
// per-layer attribution into the device-knowledge store as one learned
// observation for the spec's phone model: Δdu−k (user-space share),
// Δdk−n (host-bus share), and mean(dn) − path RTT (the PSM/air share) —
// the same three quantities an attributing crowd device reports to the
// ingest service. The chipset-family key is resolved from the phone
// profile table so family fallback works for models the store has
// never seen. Returns false when there was nothing to feed (nil store,
// no result, or no extractable attribution — live and cellular
// backends have no capture).
func FeedKnowledge(st *puncture.Store, spec Spec, res *Result) bool {
	if st == nil || res == nil {
		return false
	}
	res.Analyze()
	l := res.Layers
	if l == nil || len(l.Dn) == 0 || len(l.DuK) == 0 || len(l.DkN) == 0 {
		return false
	}
	phone := spec.Phone
	if phone == "" {
		phone = DefaultPhone
	}
	rtt := spec.EmulatedRTT
	if rtt == 0 {
		rtt = DefaultEmulatedRTT
	}
	chipset := ""
	if prof, ok := android.ProfileByName(phone); ok {
		phone, chipset = prof.Model, prof.Chipset
	}
	st.RecordAttribution(phone, chipset,
		int64(l.DuK.Mean()), int64(l.DkN.Mean()), int64(l.Dn.Mean()-rtt))
	return true
}
