// Package energy accounts for the power cost of the mechanisms the
// paper studies. AcuteMon's design brief (§4.1) claims it "consumes
// very low battery, because it sends out very few additional packets in
// the measurement phase, and will not affect the energy-saving
// mechanisms when there are no measurement tasks" — this package makes
// that claim measurable: it integrates per-component power over virtual
// time as the radio and host bus move through their states.
//
// Power figures are representative smartphone values (WiFi radio ~220 mW
// awake / ~12 mW dozing, plus per-frame transmit/receive energy; SDIO
// bus ~25 mW awake / ~2 mW asleep). Absolute joules depend on hardware;
// the experiments compare *relative* costs between measurement schemes.
package energy

import (
	"fmt"
	"time"

	"repro/internal/mac"
	"repro/internal/sdio"
	"repro/internal/simtime"
)

// PowerModel holds the component power levels in milliwatts.
type PowerModel struct {
	RadioCAM    float64 // receiver on, idle
	RadioListen float64 // beacon listen window
	RadioDoze   float64
	BusAwake    float64
	BusAsleep   float64
	// TxPower/RxPower are the *additional* draw while a frame is on the
	// air, multiplied by airtime by the caller.
	TxPower float64
	RxPower float64
}

// DefaultPowerModel returns representative smartphone WiFi figures.
func DefaultPowerModel() PowerModel {
	return PowerModel{
		RadioCAM:    220,
		RadioListen: 180,
		RadioDoze:   12,
		BusAwake:    25,
		BusAsleep:   2,
		TxPower:     480,
		RxPower:     210,
	}
}

// Meter integrates component power over virtual time.
type Meter struct {
	sim   *simtime.Sim
	model PowerModel

	radioPower  float64
	radioSince  time.Duration
	radioEnergy float64 // mJ

	busPower  float64
	busSince  time.Duration
	busEnergy float64

	frameEnergy float64 // per-frame tx/rx bursts

	// AwakeTime accumulates radio non-doze time.
	AwakeTime  time.Duration
	awakeSince time.Duration
	dozing     bool
}

// NewMeter creates a meter assuming the radio starts in CAM and the bus
// awake (matching the STA/Bus initial states).
func NewMeter(sim *simtime.Sim, model PowerModel) *Meter {
	return &Meter{
		sim:        sim,
		model:      model,
		radioPower: model.RadioCAM,
		busPower:   model.BusAwake,
		radioSince: sim.Now(),
		busSince:   sim.Now(),
		awakeSince: sim.Now(),
	}
}

// Attach hooks the meter to a station MAC and host bus. Existing hooks
// are chained, not replaced.
func (m *Meter) Attach(sta *mac.STA, bus *sdio.Bus) {
	if sta != nil {
		prev := sta.OnPowerState
		sta.OnPowerState = func(old, new mac.PowerState) {
			if prev != nil {
				prev(old, new)
			}
			m.RadioState(new)
		}
		m.RadioState(sta.State())
	}
	if bus != nil {
		prevB := bus.OnPower
		bus.OnPower = func(asleep bool) {
			if prevB != nil {
				prevB(asleep)
			}
			m.BusState(asleep)
		}
		m.BusState(bus.Asleep())
	}
}

// RadioState records a radio power transition.
func (m *Meter) RadioState(s mac.PowerState) {
	now := m.sim.Now()
	m.radioEnergy += m.radioPower * (now - m.radioSince).Seconds()
	m.radioSince = now
	switch s {
	case mac.StateCAM:
		m.radioPower = m.model.RadioCAM
	case mac.StateListen:
		m.radioPower = m.model.RadioListen
	default:
		m.radioPower = m.model.RadioDoze
	}
	// Awake-time accounting.
	if s == mac.StateDoze {
		if !m.dozing {
			m.AwakeTime += now - m.awakeSince
			m.dozing = true
		}
	} else if m.dozing {
		m.awakeSince = now
		m.dozing = false
	}
}

// BusState records a bus power transition.
func (m *Meter) BusState(asleep bool) {
	now := m.sim.Now()
	m.busEnergy += m.busPower * (now - m.busSince).Seconds()
	m.busSince = now
	if asleep {
		m.busPower = m.model.BusAsleep
	} else {
		m.busPower = m.model.BusAwake
	}
}

// FrameTx charges one transmitted frame of the given airtime.
func (m *Meter) FrameTx(airtime time.Duration) {
	m.frameEnergy += m.model.TxPower * airtime.Seconds()
}

// FrameRx charges one received frame.
func (m *Meter) FrameRx(airtime time.Duration) {
	m.frameEnergy += m.model.RxPower * airtime.Seconds()
}

// settleTo integrates the open intervals up to now.
func (m *Meter) settle() {
	now := m.sim.Now()
	m.radioEnergy += m.radioPower * (now - m.radioSince).Seconds()
	m.radioSince = now
	m.busEnergy += m.busPower * (now - m.busSince).Seconds()
	m.busSince = now
	if !m.dozing {
		m.AwakeTime += now - m.awakeSince
		m.awakeSince = now
	}
}

// Report is a settled energy summary in millijoules.
type Report struct {
	RadioMJ float64
	BusMJ   float64
	FrameMJ float64
	// Awake is the radio's cumulative non-doze time.
	Awake time.Duration
	// Window is the elapsed virtual time covered.
	Window time.Duration
}

// TotalMJ sums all components.
func (r Report) TotalMJ() float64 { return r.RadioMJ + r.BusMJ + r.FrameMJ }

// String renders the report.
func (r Report) String() string {
	return fmt.Sprintf("energy{total=%.1fmJ radio=%.1f bus=%.1f frames=%.1f awake=%v/%v}",
		r.TotalMJ(), r.RadioMJ, r.BusMJ, r.FrameMJ, r.Awake.Round(time.Millisecond), r.Window.Round(time.Millisecond))
}

// Snapshot settles and returns the totals so far.
func (m *Meter) Snapshot() Report {
	m.settle()
	return Report{
		RadioMJ: m.radioEnergy,
		BusMJ:   m.busEnergy,
		FrameMJ: m.frameEnergy,
		Awake:   m.AwakeTime,
		Window:  m.sim.Now(),
	}
}

// Delta returns the difference between two reports (b - a), useful for
// isolating one measurement campaign inside a longer run.
func Delta(a, b Report) Report {
	return Report{
		RadioMJ: b.RadioMJ - a.RadioMJ,
		BusMJ:   b.BusMJ - a.BusMJ,
		FrameMJ: b.FrameMJ - a.FrameMJ,
		Awake:   b.Awake - a.Awake,
		Window:  b.Window - a.Window,
	}
}
