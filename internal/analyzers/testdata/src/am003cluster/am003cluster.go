// Package am003fix is the cluster-side AM003 golden fixture: the
// replica-merge shapes from internal/cluster, where per-peer replica
// stripes must never nest. Loaded under a repro/internal/cluster
// import path so findings carry the same package view as the real
// gossip code.
package am003fix

import "sync"

type replica struct {
	mu    sync.Mutex
	cells map[string]int64
	epoch int64
}

type node struct {
	replicas []replica
}

func (n *node) shardFor(peer string) *replica {
	return &n.replicas[len(peer)%len(n.replicas)]
}

// MergeAcross rebalances one peer's replica into another while still
// holding the first — the nested-stripe deadlock AM003 exists to stop.
func (n *node) MergeAcross(from, to int, key string) {
	n.replicas[from].mu.Lock()
	defer n.replicas[from].mu.Unlock()
	v := n.replicas[from].cells[key]
	n.replicas[to].mu.Lock() // want "AM003: acquiring replica lock while replica lock is held"
	n.replicas[to].cells[key] = v
	n.replicas[to].mu.Unlock()
}

// MergeHandles nests through shardFor handles — the helper-returned
// form of the same bug.
func (n *node) MergeHandles(a, b string) {
	src := n.shardFor(a)
	src.mu.Lock()
	dst := n.shardFor(b)
	dst.mu.Lock() // want "AM003: acquiring replica lock while replica lock is held"
	dst.mu.Unlock()
	src.mu.Unlock()
}

// MergeSequential is the replica-apply discipline the real node keeps:
// finish with one peer's stripe before touching the next, carrying the
// delta through locals.
func (n *node) MergeSequential(from, to int, key string) {
	n.replicas[from].mu.Lock()
	v := n.replicas[from].cells[key]
	n.replicas[from].epoch++
	n.replicas[from].mu.Unlock()
	n.replicas[to].mu.Lock()
	n.replicas[to].cells[key] = v
	n.replicas[to].mu.Unlock()
}

// SnapshotAll reads every replica one stripe at a time — the
// ReplicaCells shape, clean because each lock is released before the
// next index is taken.
func (n *node) SnapshotAll() map[string]int64 {
	out := map[string]int64{}
	for i := range n.replicas {
		n.replicas[i].mu.Lock()
		for k, v := range n.replicas[i].cells {
			out[k] += v
		}
		n.replicas[i].mu.Unlock()
	}
	return out
}
