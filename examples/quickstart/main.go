// Quickstart: build the simulated testbed, run one AcuteMon measurement,
// and print the accuracy headline — median delay overhead within 3 ms
// regardless of the path RTT.
package main

import (
	"fmt"
	"time"

	acutemon "repro"
	"repro/internal/stats"
)

func main() {
	cfg := acutemon.DefaultTestbedConfig()
	cfg.EmulatedRTT = 85 * time.Millisecond
	tb := acutemon.NewTestbed(cfg)

	// Let the idle phone settle — it will doze, like a phone in a pocket.
	tb.Sim.RunUntil(500 * time.Millisecond)

	res := acutemon.Measure(tb, acutemon.Config{K: 100})
	sample := res.Sample()
	fmt.Printf("AcuteMon on %s over an %v path:\n", tb.Phone.Profile.Model, cfg.EmulatedRTT)
	fmt.Printf("  measured RTT: %s\n", sample.Summarize())

	duk, dkn := acutemon.Overheads(tb, res)
	fmt.Printf("  Δdu−k median: %.2f ms\n", stats.Millis(duk.Median()))
	fmt.Printf("  Δdk−n median: %.2f ms\n", stats.Millis(dkn.Median()))
	fmt.Printf("  total median overhead: %.2f ms (paper: within 3 ms)\n",
		stats.Millis(duk.Median()+dkn.Median()))
	fmt.Printf("  background packets: %d, all dropped at the first hop\n", res.BackgroundSent)
}
