package packet

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// Link-layer header types for pcap files.
const (
	LinkTypeRaw   uint32 = 101 // raw IP
	LinkTypeDot11 uint32 = 105 // IEEE 802.11 without radiotap
)

// PcapWriter emits the classic libpcap file format (magic 0xa1b2c3d4,
// microsecond timestamps) so captures from the simulated sniffers can be
// opened in Wireshark/tcpdump. Only stdlib encoding is used.
type PcapWriter struct {
	w        io.Writer
	snaplen  uint32
	linkType uint32
	wroteHdr bool
	records  int
}

// NewPcapWriter creates a writer for the given link type.
func NewPcapWriter(w io.Writer, linkType uint32) *PcapWriter {
	return &PcapWriter{w: w, snaplen: 65535, linkType: linkType}
}

func (pw *PcapWriter) writeHeader() error {
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:4], 0xa1b2c3d4)
	binary.LittleEndian.PutUint16(hdr[4:6], 2) // major
	binary.LittleEndian.PutUint16(hdr[6:8], 4) // minor
	// thiszone, sigfigs zero
	binary.LittleEndian.PutUint32(hdr[16:20], pw.snaplen)
	binary.LittleEndian.PutUint32(hdr[20:24], pw.linkType)
	_, err := pw.w.Write(hdr)
	return err
}

// WritePacket appends one record with the given virtual capture time.
func (pw *PcapWriter) WritePacket(ts time.Duration, data []byte) error {
	if !pw.wroteHdr {
		if err := pw.writeHeader(); err != nil {
			return err
		}
		pw.wroteHdr = true
	}
	if len(data) > int(pw.snaplen) {
		data = data[:pw.snaplen]
	}
	rec := make([]byte, 16)
	binary.LittleEndian.PutUint32(rec[0:4], uint32(ts/time.Second))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(ts%time.Second/time.Microsecond))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(data)))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(data)))
	if _, err := pw.w.Write(rec); err != nil {
		return err
	}
	if _, err := pw.w.Write(data); err != nil {
		return err
	}
	pw.records++
	return nil
}

// Records returns the number of packets written.
func (pw *PcapWriter) Records() int { return pw.records }

// PcapRecord is one packet read back from a pcap stream.
type PcapRecord struct {
	Timestamp time.Duration
	Data      []byte
}

// ReadPcap parses a classic pcap stream written by PcapWriter (or any
// little-endian microsecond pcap) and returns the link type and records.
func ReadPcap(r io.Reader) (uint32, []PcapRecord, error) {
	hdr := make([]byte, 24)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, fmt.Errorf("pcap: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != 0xa1b2c3d4 {
		return 0, nil, fmt.Errorf("pcap: bad magic %#x", binary.LittleEndian.Uint32(hdr[0:4]))
	}
	linkType := binary.LittleEndian.Uint32(hdr[20:24])
	var recs []PcapRecord
	rec := make([]byte, 16)
	for {
		if _, err := io.ReadFull(r, rec); err != nil {
			if err == io.EOF {
				return linkType, recs, nil
			}
			return linkType, recs, fmt.Errorf("pcap: reading record header: %w", err)
		}
		sec := binary.LittleEndian.Uint32(rec[0:4])
		usec := binary.LittleEndian.Uint32(rec[4:8])
		caplen := binary.LittleEndian.Uint32(rec[8:12])
		data := make([]byte, caplen)
		if _, err := io.ReadFull(r, data); err != nil {
			return linkType, recs, fmt.Errorf("pcap: reading record body: %w", err)
		}
		recs = append(recs, PcapRecord{
			Timestamp: time.Duration(sec)*time.Second + time.Duration(usec)*time.Microsecond,
			Data:      data,
		})
	}
}
