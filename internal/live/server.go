package live

import (
	"bufio"
	"fmt"
	"net"
	"sync"
)

// Servers is the live measurement target: a TCP listener answering HTTP
// GETs (and serving as a connect-probe target) plus a UDP echo socket,
// both on the same port number where possible.
type Servers struct {
	tcp net.Listener
	udp *net.UDPConn

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup

	// Stats
	httpRequests int
	udpEchoes    int
	conns        int
}

// StartServers binds servers on the given address ("127.0.0.1:0" picks a
// free port).
func StartServers(addr string) (*Servers, error) {
	l, err := net.Listen("tcp4", addr)
	if err != nil {
		return nil, fmt.Errorf("live: tcp listen: %w", err)
	}
	uaddr, err := net.ResolveUDPAddr("udp4", l.Addr().String())
	if err != nil {
		l.Close()
		return nil, err
	}
	u, err := net.ListenUDP("udp4", uaddr)
	if err != nil {
		l.Close()
		return nil, fmt.Errorf("live: udp listen: %w", err)
	}
	s := &Servers{tcp: l, udp: u}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.echoLoop()
	return s, nil
}

// Addr returns the servers' address ("host:port").
func (s *Servers) Addr() string { return s.tcp.Addr().String() }

// Close shuts both servers down.
func (s *Servers) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.tcp.Close()
	s.udp.Close()
	s.wg.Wait()
}

// Stats returns (http requests, udp echoes, tcp connections) served.
func (s *Servers) Stats() (int, int, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.httpRequests, s.udpEchoes, s.conns
}

func (s *Servers) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.tcp.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		s.conns++
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveHTTP(conn)
		}()
	}
}

// serveHTTP answers minimal keep-alive GETs.
func (s *Servers) serveHTTP(conn net.Conn) {
	defer conn.Close()
	rd := bufio.NewReader(conn)
	for {
		// Read one request (headers only; GETs carry no body).
		sawGet := false
		for {
			line, err := rd.ReadString('\n')
			if err != nil {
				return
			}
			if len(line) >= 3 && line[:3] == "GET" {
				sawGet = true
			}
			if line == "\r\n" || line == "\n" {
				break
			}
		}
		if !sawGet {
			return
		}
		s.mu.Lock()
		s.httpRequests++
		s.mu.Unlock()
		body := "ok\n"
		resp := fmt.Sprintf("HTTP/1.1 200 OK\r\nContent-Length: %d\r\nConnection: keep-alive\r\n\r\n%s", len(body), body)
		if _, err := conn.Write([]byte(resp)); err != nil {
			return
		}
	}
}

func (s *Servers) echoLoop() {
	defer s.wg.Done()
	buf := make([]byte, 2048)
	for {
		n, raddr, err := s.udp.ReadFromUDP(buf)
		if err != nil {
			return
		}
		s.mu.Lock()
		s.udpEchoes++
		s.mu.Unlock()
		s.udp.WriteToUDP(buf[:n], raddr)
	}
}
