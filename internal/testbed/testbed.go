// Package testbed assembles the complete experimental rig of the
// paper's Figure 2: a smartphone and a wireless load generator attached
// to an 802.11g cell, the AP bridging to a wired switch, the measurement
// and load servers behind it, netem-style emulated path delay on the
// server port (the paper's `tc` command), and three promiscuous sniffers
// whose merged capture yields the network-level RTT dn.
package testbed

import (
	"time"

	"repro/internal/android"
	"repro/internal/driver"
	"repro/internal/energy"
	"repro/internal/mac"
	"repro/internal/medium"
	"repro/internal/packet"
	"repro/internal/phy"
	"repro/internal/server"
	"repro/internal/simtime"
	"repro/internal/sniffer"
	"repro/internal/trace"
	"repro/internal/wired"
)

// Testbed addresses (the paper's RFC1918 lab layout).
var (
	PhoneIP      = packet.IP(192, 168, 1, 2)
	LoadGenIP    = packet.IP(192, 168, 1, 3)
	ServerIP     = packet.IP(10, 0, 0, 9)
	LoadServerIP = packet.IP(10, 0, 0, 10)
	// WarmupIP is the warm-up target: AcuteMon's TTL=1 packets die at
	// the gateway before ever reaching it, so no host listens there.
	WarmupIP = packet.IP(10, 0, 0, 11)
)

// Config parameterises a testbed instance.
type Config struct {
	Seed  int64
	Phone android.Profile
	// Runtime selects the phone's app runtime (AcuteMon uses native C).
	Runtime android.Runtime
	// DisablePSM pins the phone's radio in CAM.
	DisablePSM bool
	// DisableBusSleep applies the paper's driver modification.
	DisableBusSleep bool
	// BeaconMissProb: 0 keeps the calibrated default; negative = never.
	BeaconMissProb float64
	// EmulatedRTT is the tc-injected path delay (split half per
	// direction on the server port).
	EmulatedRTT time.Duration
	// SnifferLoss is each sniffer's frame-miss probability.
	SnifferLoss float64
	// TraceCap bounds the shared trace (0 = no tracing).
	TraceCap int
	// ModifyDriver edits the phone's driver configuration before
	// assembly (idletime/watchdog sweeps).
	ModifyDriver func(*driver.Config)
	// EnergyMetering attaches an energy.Meter to the phone's radio and
	// host bus (the §4.1 battery-cost evaluation).
	EnergyMetering bool
}

// DefaultConfig returns a Nexus 5 testbed with a 30 ms emulated path.
func DefaultConfig() Config {
	return Config{
		Seed:        1,
		Phone:       mustProfile("Google Nexus 5"),
		EmulatedRTT: 30 * time.Millisecond,
		SnifferLoss: 0.03,
	}
}

func mustProfile(name string) android.Profile {
	p, ok := android.ProfileByName(name)
	if !ok {
		panic("testbed: unknown profile " + name)
	}
	return p
}

// Testbed is the assembled rig.
type Testbed struct {
	Cfg Config

	Sim   *simtime.Sim
	Fac   *packet.Factory
	Med   *medium.Medium
	AP    *mac.AP
	Phone *android.Phone
	Wired *wired.Network

	Server     *server.Measurement
	LoadServer *server.LoadServer
	LoadGen    *server.LoadGen

	Sniffers []*sniffer.Sniffer
	Trace    *trace.Trace
	// Energy is non-nil when Config.EnergyMetering is set.
	Energy *energy.Meter
}

// energyTap charges the meter for the phone's share of every frame on
// the air.
type energyTap struct {
	tb *Testbed
}

// CaptureFrame implements medium.Tap.
func (e *energyTap) CaptureFrame(p *packet.Packet, airStart, airEnd time.Duration) {
	d11 := p.Dot11()
	if d11 == nil {
		return
	}
	airtime := airEnd - airStart
	switch {
	case d11.Addr2 == e.tb.Phone.MACAddr:
		e.tb.Energy.FrameTx(airtime)
	case d11.Addr1 == e.tb.Phone.MACAddr,
		d11.Addr1.IsBroadcast() && e.tb.Phone.STA.RadioOn():
		e.tb.Energy.FrameRx(airtime)
	}
}

// New assembles a testbed.
func New(cfg Config) *Testbed {
	if cfg.Phone.Model == "" {
		cfg.Phone = mustProfile("Google Nexus 5")
	}
	tb := &Testbed{Cfg: cfg}
	tb.Sim = simtime.New(cfg.Seed)
	tb.Fac = &packet.Factory{}
	if cfg.TraceCap > 0 {
		tb.Trace = trace.New(cfg.TraceCap)
	}

	// Radio cell.
	tb.Med = medium.New(tb.Sim, phy.Default80211g(), medium.DefaultOptions())
	apCfg := mac.DefaultAPConfig()
	tb.AP = mac.NewAP(tb.Sim, tb.Med, apCfg, tb.Fac, tb.Trace)

	// Three sniffers, placed within half a metre like the paper's.
	for _, name := range []string{"A", "B", "C"} {
		sn := sniffer.New(tb.Sim, name, cfg.SnifferLoss)
		tb.Sniffers = append(tb.Sniffers, sn)
		tb.Med.AttachTap(sn)
	}

	// The phone.
	tb.Phone = android.NewPhone(tb.Sim, cfg.Phone, tb.Med, tb.Fac, android.PhoneOptions{
		IP:             PhoneIP,
		MAC:            packet.MAC(1),
		AID:            1,
		BSSID:          apCfg.MAC,
		DisablePSM:     cfg.DisablePSM,
		BeaconMissProb: cfg.BeaconMissProb,
		Runtime:        cfg.Runtime,
		Trace:          tb.Trace,
		ModifyDriver:   cfg.ModifyDriver,
	})
	tb.Phone.STA.SetBeaconSchedule(tb.AP)
	tb.AP.Associate(packet.MAC(1), 1, PhoneIP, cfg.Phone.AssocListenInterval)
	if cfg.DisableBusSleep {
		tb.Phone.Drv.SetBusSleepEnabled(false)
	}

	// Wired segment with the tc-emulated delay on the server port.
	tb.Wired = wired.New(tb.Sim, tb.Fac, wired.DefaultConfig())
	tb.AP.SetWiredOut(tb.Wired.FromWLAN)
	tb.Wired.SetWLAN(tb.AP.WiredDeliver, func(ip packet.IPv4Addr) bool {
		return ip[0] == 192 && ip[1] == 168 && ip[2] == 1
	})

	var half simtime.Dist
	if cfg.EmulatedRTT > 0 {
		half = simtime.Const(cfg.EmulatedRTT / 2)
	}
	tb.Server = server.NewMeasurement(tb.Sim, tb.Fac, ServerIP, tb.Trace)
	tb.Server.Connect(tb.Wired.AttachHost(tb.Server.Stack, half, half))

	tb.LoadServer = server.NewLoadServer(tb.Sim, tb.Fac, LoadServerIP, tb.Trace)
	tb.LoadServer.Connect(tb.Wired.AttachHost(tb.LoadServer.Stack, nil, nil))

	lgCfg := server.DefaultLoadGenConfig()
	lgCfg.IP = LoadGenIP
	lgCfg.MAC = packet.MAC(3)
	lgCfg.AID = 2
	lgCfg.BSSID = apCfg.MAC
	lgCfg.Target = LoadServerIP
	tb.LoadGen = server.NewLoadGen(tb.Sim, tb.Med, tb.Fac, lgCfg, tb.Trace)
	tb.LoadGen.STA.SetBeaconSchedule(tb.AP)
	tb.AP.Associate(packet.MAC(3), 2, LoadGenIP, 1)

	// The phone runs tcpdump throughout (the dk vantage point).
	tb.Phone.Stack.BPF().Enable()

	if cfg.EnergyMetering {
		tb.Energy = energy.NewMeter(tb.Sim, energy.DefaultPowerModel())
		tb.Energy.Attach(tb.Phone.STA, tb.Phone.Drv.Bus())
		tb.Med.AttachTap(&energyTap{tb: tb})
	}

	return tb
}

// StartCrossTraffic launches the §4.3 iPerf load.
func (tb *Testbed) StartCrossTraffic() { tb.LoadGen.Start() }

// StopCrossTraffic halts it.
func (tb *Testbed) StopCrossTraffic() { tb.LoadGen.Stop() }

// MergedCapture unions the three sniffers.
func (tb *Testbed) MergedCapture() *sniffer.Merged {
	return sniffer.Merge(tb.Sniffers...)
}

// LayerRTTs carries one probe's RTT as seen at each vantage point of the
// paper's Fig. 1 model: user (du), kernel/tcpdump (dk), driver (dv, when
// the instrumented driver saw both directions), and air (dn).
type LayerRTTs struct {
	Du, Dk, Dn time.Duration
	DuOK       bool
	DkOK       bool
	DnOK       bool
}

// DeltaUK is the user-kernel overhead Δdu−k.
func (l LayerRTTs) DeltaUK() (time.Duration, bool) { return l.Du - l.Dk, l.DuOK && l.DkOK }

// DeltaKN is the kernel-phy overhead Δdk−n.
func (l LayerRTTs) DeltaKN() (time.Duration, bool) { return l.Dk - l.Dn, l.DkOK && l.DnOK }

// ExtractRTTs assembles per-layer RTTs for a request/response pair given
// the app-level send/receive instants.
func (tb *Testbed) ExtractRTTs(reqID, respID uint64, tou, tiu time.Duration) LayerRTTs {
	var out LayerRTTs
	if tiu > tou {
		out.Du = tiu - tou
		out.DuOK = true
	}
	bpf := tb.Phone.Stack.BPF()
	tok, ok1 := bpf.TimeOf(reqID)
	tik, ok2 := bpf.TimeOf(respID)
	if ok1 && ok2 && tik > tok {
		out.Dk = tik - tok
		out.DkOK = true
	}
	if dn, ok := tb.MergedCapture().RTT(reqID, respID); ok {
		out.Dn = dn
		out.DnOK = true
	}
	return out
}
