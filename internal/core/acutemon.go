// Package core implements AcuteMon, the paper's contribution (§4): an
// accurate smartphone RTT measurement scheme that defeats the
// energy-saving delay inflation by keeping the phone awake for exactly
// the duration of the measurement.
//
// AcuteMon runs two concurrent threads (Fig. 6):
//
//   - the background-traffic thread (BT) sends one warm-up packet, waits
//     dpre for the SDIO bus promotion to finish, then emits lightweight
//     background packets every db < min(Tis, Tip). All BT packets carry
//     TTL=1, so the first-hop router drops them and nothing beyond the
//     gateway is burdened;
//   - the measurement thread (MT), a native (non-Dalvik) program, sends
//     K probes — TCP SYN/ACK or HTTP request/response — in stop-and-wait
//     fashion and records user-level RTTs.
package core

import (
	"context"
	"time"

	"repro/internal/android"
	"repro/internal/packet"
	"repro/internal/stats"
	"repro/internal/testbed"
	"repro/internal/tools"
)

// ProbeType selects the MT's probe mechanism.
type ProbeType int

// Probe mechanisms (§4.1: TCP control messages and TCP data packets;
// "easily extended to UDP and ICMP").
const (
	ProbeTCPSyn ProbeType = iota
	ProbeHTTPGet
	ProbeUDPEcho
	ProbeICMPEcho
)

// String implements fmt.Stringer.
func (p ProbeType) String() string {
	switch p {
	case ProbeTCPSyn:
		return "tcp-syn"
	case ProbeHTTPGet:
		return "http-get"
	case ProbeUDPEcho:
		return "udp-echo"
	case ProbeICMPEcho:
		return "icmp-echo"
	default:
		return "probe(?)"
	}
}

// Config parameterises an AcuteMon run.
type Config struct {
	// K is the number of probes (the paper uses 100 in §4.2).
	K     int
	Probe ProbeType
	// WarmupDelay is dpre: Tprom < dpre < min(Tis, Tip). Empirically
	// 20 ms (§4.1).
	WarmupDelay time.Duration
	// BackgroundInterval is db < min(Tis, Tip); empirically 20 ms.
	BackgroundInterval time.Duration
	// BackgroundTTL is the TTL on warm-up/background packets (1).
	BackgroundTTL byte
	// NoBackground suppresses the BT entirely (the §4.4 experiment pairs
	// this with a bus-sleep-disabled driver).
	NoBackground bool
	// ProbeTimeout abandons an unanswered probe.
	ProbeTimeout time.Duration
	// Target/TargetPort address the measurement server.
	Target     packet.IPv4Addr
	TargetPort uint16
	// WarmupTarget receives the TTL=1 traffic (never actually reached).
	WarmupTarget     packet.IPv4Addr
	WarmupTargetPort uint16
}

// DefaultConfig returns the paper's empirical parameters.
func DefaultConfig() Config {
	return Config{
		K:                  100,
		Probe:              ProbeTCPSyn,
		WarmupDelay:        20 * time.Millisecond,
		BackgroundInterval: 20 * time.Millisecond,
		BackgroundTTL:      1,
		ProbeTimeout:       2 * time.Second,
		Target:             testbed.ServerIP,
		TargetPort:         80,
		WarmupTarget:       testbed.WarmupIP,
		WarmupTargetPort:   33434,
	}
}

// Result extends the common tool result with BT accounting.
type Result struct {
	tools.Result
	// WarmupsSent counts warm-up packets (1 per run).
	WarmupsSent int
	// BackgroundSent counts db-interval packets.
	BackgroundSent int
	// Started/Finished bracket the measurement phase.
	Started, Finished time.Duration
}

// Monitor is an AcuteMon instance bound to a testbed phone.
type Monitor struct {
	tb  *testbed.Testbed
	cfg Config
}

// New creates a monitor. Zero-value config fields are filled from
// DefaultConfig.
func New(tb *testbed.Testbed, cfg Config) *Monitor {
	def := DefaultConfig()
	if cfg.K <= 0 {
		cfg.K = def.K
	}
	if cfg.WarmupDelay <= 0 {
		cfg.WarmupDelay = def.WarmupDelay
	}
	if cfg.BackgroundInterval <= 0 {
		cfg.BackgroundInterval = def.BackgroundInterval
	}
	if cfg.BackgroundTTL == 0 {
		cfg.BackgroundTTL = def.BackgroundTTL
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = def.ProbeTimeout
	}
	if cfg.Target == (packet.IPv4Addr{}) {
		cfg.Target = def.Target
	}
	if cfg.TargetPort == 0 {
		cfg.TargetPort = def.TargetPort
	}
	if cfg.WarmupTarget == (packet.IPv4Addr{}) {
		cfg.WarmupTarget = def.WarmupTarget
	}
	if cfg.WarmupTargetPort == 0 {
		cfg.WarmupTargetPort = def.WarmupTargetPort
	}
	return &Monitor{tb: tb, cfg: cfg}
}

// Config returns the effective configuration.
func (m *Monitor) Config() Config { return m.cfg }

// Run executes one AcuteMon measurement and drives the simulation until
// it completes.
func (m *Monitor) Run() *Result {
	res, _ := m.RunContext(context.Background())
	return res
}

// RunContext is Run under cooperative cancellation: the event loop is
// stepped with periodic ctx checks, and a cancelled context returns the
// partial Result alongside ctx's error. With a background context it
// steps the exact event sequence Run always has.
func (m *Monitor) RunContext(ctx context.Context) (*Result, error) {
	res := &Result{Result: tools.Result{Tool: "acutemon", Records: make([]tools.ProbeRecord, m.cfg.K)}}
	done := false
	m.start(res, func() { done = true })
	// Upper bound: warm-up + K × (timeout) + slack.
	limit := m.cfg.WarmupDelay + time.Duration(m.cfg.K)*m.cfg.ProbeTimeout + 5*time.Second
	deadline := m.tb.Sim.Now() + limit
	err := m.tb.Sim.StepUntilCtx(ctx, deadline, func() bool { return done })
	return res, err
}

// start launches BT + MT; onDone fires when the MT completes and the BT
// has been stopped.
func (m *Monitor) start(res *Result, onDone func()) {
	tb := m.tb
	phone := tb.Phone
	tr := tb.Trace
	res.Started = tb.Sim.Now()

	bg, err := phone.Stack.OpenUDP(0)
	if err != nil {
		panic("acutemon: bg socket: " + err.Error())
	}
	bgPayload := []byte{0xAC, 0x07} // tiny: the goal is wake-keeping only

	// --- BT: warm-up phase ---
	if !m.cfg.NoBackground {
		tr.Add(tb.Sim.Now(), "BT", "warmup_send", "ttl=1")
		bg.SendTo(m.cfg.WarmupTarget, m.cfg.WarmupTargetPort, bgPayload, m.cfg.BackgroundTTL)
		res.WarmupsSent++
	}

	stopBG := false
	var bgLoop func()
	bgLoop = func() {
		if stopBG || m.cfg.NoBackground {
			return
		}
		tb.Sim.Schedule(m.cfg.BackgroundInterval, func() {
			if stopBG {
				return
			}
			tr.Add(tb.Sim.Now(), "BT", "background_send", "ttl=1")
			bg.SendTo(m.cfg.WarmupTarget, m.cfg.WarmupTargetPort, bgPayload, m.cfg.BackgroundTTL)
			res.BackgroundSent++
			bgLoop()
		})
	}

	finish := func() {
		stopBG = true
		bg.Close()
		res.Finished = tb.Sim.Now()
		for i := range res.Records {
			if !res.Records[i].OK {
				res.Lost++
			}
		}
		tr.Add(tb.Sim.Now(), "BT", "stopped", "")
		onDone()
	}

	// --- MT: starts after dpre, while BT keeps the phone awake ---
	tb.Sim.Schedule(m.cfg.WarmupDelay, func() {
		tr.Add(tb.Sim.Now(), "MT", "measurement_start", "")
		bgLoop()
		m.runProbes(res, 0, finish)
	})
}

// runProbes performs the stop-and-wait probe sequence.
func (m *Monitor) runProbes(res *Result, i int, finish func()) {
	if i >= m.cfg.K {
		finish()
		return
	}
	tb := m.tb
	rec := &res.Records[i]
	rec.Seq = i
	res.Sent++
	next := func() { m.runProbes(res, i+1, finish) }

	completed := false
	complete := func(respID uint64) {
		if completed {
			return
		}
		completed = true
		rec.RecvAt = tb.Sim.Now()
		rec.RespID = respID
		rec.RTT = rec.RecvAt - rec.SentAt
		rec.OK = true
		tb.Trace.Addf(tb.Sim.Now(), "MT", "probe_done", "k=%d rtt=%v", i, rec.RTT)
		next()
	}
	timeout := tb.Sim.Schedule(m.cfg.ProbeTimeout, func() {
		if completed {
			return
		}
		completed = true
		tb.Trace.Addf(tb.Sim.Now(), "MT", "probe_timeout", "k=%d", i)
		next()
	})
	_ = timeout

	rec.SentAt = tb.Sim.Now()
	tb.Trace.Addf(tb.Sim.Now(), "MT", "probe_send", "k=%d type=%s", i, m.cfg.Probe)
	phone := tb.Phone
	// The MT is a pre-compiled native binary (§4.1), so the user-space
	// overhead is the native one regardless of the app's own runtime.
	phone.AppDoAs(android.NativeC, func() {
		switch m.cfg.Probe {
		case ProbeTCPSyn:
			conn := phone.Stack.Dial(m.cfg.Target, m.cfg.TargetPort)
			rec.ReqID = conn.SynPacket.ID
			conn.OnConnected = func(at time.Duration, synAck *packet.Packet) {
				phone.AppDoAs(android.NativeC, func() { complete(synAck.ID) })
				conn.Close()
			}
		case ProbeHTTPGet:
			conn := phone.Stack.Dial(m.cfg.Target, m.cfg.TargetPort)
			conn.OnConnected = func(at time.Duration, synAck *packet.Packet) {
				// Connect time is not the sample; re-time the GET.
				rec.SentAt = tb.Sim.Now()
				req := conn.Send([]byte("GET / HTTP/1.1\r\nHost: acutemon\r\n\r\n"))
				if req != nil {
					rec.ReqID = req.ID
				}
			}
			conn.OnData = func(payload []byte, at time.Duration, p *packet.Packet) {
				phone.AppDoAs(android.NativeC, func() { complete(p.ID) })
				conn.Close()
			}
		case ProbeUDPEcho:
			sock, err := phone.Stack.OpenUDP(0)
			if err != nil {
				next()
				return
			}
			sock.SetRecv(func(payload []byte, from packet.IPv4Addr, fp uint16, p *packet.Packet, at time.Duration) {
				phone.AppDoAs(android.NativeC, func() { complete(p.ID) })
				sock.Close()
			})
			req := sock.SendTo(m.cfg.Target, 7, []byte("acutemon"), 0)
			rec.ReqID = req.ID
		case ProbeICMPEcho:
			id := uint16(0xAC00 + i%256)
			phone.Stack.OnICMP(id, func(ic *packet.ICMP, p *packet.Packet, at time.Duration) {
				phone.Stack.CloseICMP(id)
				phone.AppDoAs(android.NativeC, func() { complete(p.ID) })
			})
			req := phone.Stack.SendEcho(m.cfg.Target, id, uint16(i), 56)
			rec.ReqID = req.ID
		}
	})
}

// OverheadStats extracts the Fig 7 quantities for an AcuteMon run via
// the shared tools.ExtractLayers capture walk.
func OverheadStats(tb *testbed.Testbed, res *Result) (duk, dkn stats.Sample) {
	l := tools.ExtractLayers(tb, res.Records)
	return l.DuK, l.DkN
}
