package ingest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestPipelineShardingEquivalence is the per-core pipeline's merge-law
// check: batches enqueued sequentially through the key-sharded pipes
// must leave the store bit-identical to a serial fold of the same
// summaries in the same order. This holds exactly — not just within
// tolerance — because every cell's summaries land on one pipe in FIFO
// order, so per-cell fold order is preserved; the summaries carry no
// attribution (LayersOK=false), keeping the correction path read-only
// and therefore order-independent across pipes.
func TestPipelineShardingEquivalence(t *testing.T) {
	s := startTestServer(t, Config{Window: -1, FoldWorkers: 8, QueueDepth: 4})

	devices := []string{"Google Nexus 5", "Samsung Grand", "HTC One", "Sony Xperia J", "LG G2"}
	scenarios := []string{"idle", "screen-off", "bulk"}
	var batches [][]Summary
	total := 0
	for b := 0; b < 60; b++ {
		batch := make([]Summary, 20)
		for i := range batch {
			n := b*len(batch) + i
			batch[i] = Summary{
				Device:   devices[n%len(devices)],
				Scenario: scenarios[(n/7)%len(scenarios)],
				Group:    fmt.Sprintf("g%d", n%3),
				TimeMS:   1,
				Sent:     3,
				Lost:     n % 2,
				RTTs: []int64{
					int64(20+n%25) * int64(time.Millisecond),
					int64(30+n%17) * int64(time.Millisecond),
					int64(25+n%31) * int64(time.Millisecond),
				},
			}
		}
		batches = append(batches, batch)
		total += len(batch)
	}

	// Serial reference: same summaries, same order, one goroutine.
	ref := NewStore(0, 1)
	refPunc := NewPuncturer(nil, 1)
	for _, batch := range batches {
		for i := range batch {
			corr, src := refPunc.Correction(&batch[i])
			ref.Fold(&batch[i], corr, src)
		}
	}

	for _, batch := range batches {
		// Sequential enqueues, as a well-behaved device would post; the
		// credit pool is deliberately small so the pipes drain mid-run.
		clone := make([]Summary, len(batch))
		copy(clone, batch)
		for !s.enqueue(clone) {
			time.Sleep(time.Millisecond)
		}
	}
	waitFolded(t, s, int64(total))

	want, err := json.Marshal(ref.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(s.Store().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("pipelined store differs from serial fold:\n got %s\nwant %s", got, want)
	}
}

// TestPipelineConcurrentPosters hammers the pipes from many goroutines
// — the -race workout for the credit pool, the scatter, and the
// per-pipe fold loops. Totals must balance even under backpressure
// retries.
func TestPipelineConcurrentPosters(t *testing.T) {
	s := startTestServer(t, Config{Window: -1, FoldWorkers: 4, QueueDepth: 2})

	const posters, postsEach, perBatch = 8, 25, 10
	var wg sync.WaitGroup
	for p := 0; p < posters; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			// One LoadGen per poster: its lazy fill and retry state are
			// single-client by design.
			lg := &LoadGen{URL: s.URL(), TimeMS: 1, Retries: 100, RetryDelay: time.Millisecond}
			for i := 0; i < postsEach; i++ {
				batch := make([]Summary, perBatch)
				for j := range batch {
					batch[j] = Summary{
						Device: fmt.Sprintf("dev-%d", (p+i+j)%6),
						TimeMS: 1, Sent: 1,
						RTTs: []int64{int64(30 * time.Millisecond)},
					}
				}
				if err := lg.Send(context.Background(), batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()

	total := int64(posters * postsEach * perBatch)
	waitFolded(t, s, total)
	var sessions int64
	for _, c := range s.Store().Snapshot() {
		sessions += c.Sessions
	}
	if sessions != total {
		t.Fatalf("store sessions %d, want %d", sessions, total)
	}
}
