package server

import (
	"strings"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/mac"
	"repro/internal/medium"
	"repro/internal/packet"
	"repro/internal/phy"
	"repro/internal/simtime"
	"repro/internal/wired"
)

// wireUp connects the measurement server and a client stack over a
// wired.Network.
func wireUp(seed int64) (*simtime.Sim, *Measurement, *kernel.Stack) {
	sim := simtime.New(seed)
	fac := &packet.Factory{}
	net := wired.New(sim, fac, wired.DefaultConfig())
	srv := NewMeasurement(sim, fac, packet.IP(10, 0, 0, 9), nil)
	srv.Connect(net.AttachHost(srv.Stack, nil, nil))
	clientDev := &switchableDevice{}
	client := kernel.New(sim, kernel.ServerConfig(packet.IP(10, 0, 0, 2)), clientDev, fac, nil)
	clientDev.send = net.AttachHost(client, nil, nil)
	return sim, srv, client
}

func TestMeasurementICMPEcho(t *testing.T) {
	sim, _, client := wireUp(1)
	var got bool
	client.OnICMP(3, func(ic *packet.ICMP, p *packet.Packet, at time.Duration) { got = true })
	client.SendEcho(packet.IP(10, 0, 0, 9), 3, 1, 56)
	sim.RunUntil(100 * time.Millisecond)
	if !got {
		t.Fatal("no echo reply")
	}
}

func TestMeasurementHTTP(t *testing.T) {
	sim, srv, client := wireUp(2)
	conn := client.Dial(packet.IP(10, 0, 0, 9), HTTPPort)
	var resp []byte
	conn.OnConnected = func(at time.Duration, p *packet.Packet) {
		conn.Send([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"))
	}
	conn.OnData = func(payload []byte, at time.Duration, p *packet.Packet) { resp = payload }
	sim.RunUntil(200 * time.Millisecond)
	if n := srv.HTTPRequests.Load(); n != 1 {
		t.Fatalf("server saw %d requests", n)
	}
	if !strings.HasPrefix(string(resp), "HTTP/1.1 200 OK") {
		t.Fatalf("response = %q", resp)
	}
	if !strings.Contains(string(resp), "hello from the measurement server") {
		t.Fatalf("body missing: %q", resp)
	}
}

func TestMeasurementUDPEcho(t *testing.T) {
	sim, srv, client := wireUp(3)
	sock, _ := client.OpenUDP(0)
	var reply []byte
	sock.SetRecv(func(payload []byte, from packet.IPv4Addr, fp uint16, p *packet.Packet, at time.Duration) {
		reply = payload
	})
	sock.SendTo(packet.IP(10, 0, 0, 9), UDPEchoPort, []byte("probe"), 0)
	sim.RunUntil(100 * time.Millisecond)
	if string(reply) != "probe" {
		t.Fatalf("echo reply = %q", reply)
	}
	if n := srv.UDPEchoes.Load(); n != 1 {
		t.Fatalf("echoes = %d", n)
	}
}

func TestLoadGeneratorSaturatesCell(t *testing.T) {
	// Full §4.3 cross-traffic rig: wireless load generator → AP →
	// wired load server; offered 25 Mbps, achieved must sit well below.
	sim := simtime.New(4)
	fac := &packet.Factory{}
	med := medium.New(sim, phy.Default80211g(), medium.DefaultOptions())
	apCfg := mac.DefaultAPConfig()
	apCfg.BeaconPhase = 0
	ap := mac.NewAP(sim, med, apCfg, fac, nil)
	net := wired.New(sim, fac, wired.DefaultConfig())
	ap.SetWiredOut(net.FromWLAN)
	net.SetWLAN(ap.WiredDeliver, func(ip packet.IPv4Addr) bool { return ip[0] == 192 })

	ls := NewLoadServer(sim, fac, packet.IP(10, 0, 0, 10), nil)
	ls.Connect(net.AttachHost(ls.Stack, nil, nil))

	cfg := DefaultLoadGenConfig()
	cfg.IP = packet.IP(192, 168, 1, 3)
	cfg.MAC = packet.MAC(3)
	cfg.AID = 2
	cfg.BSSID = apCfg.MAC
	cfg.Target = packet.IP(10, 0, 0, 10)
	gen := NewLoadGen(sim, med, fac, cfg, nil)
	gen.STA.SetBeaconSchedule(ap)
	ap.Associate(cfg.MAC, cfg.AID, cfg.IP, 1)

	gen.Start()
	sim.RunUntil(2 * time.Second)
	gen.Stop()

	if gen.OfferedBps() != 25e6 {
		t.Fatalf("offered = %.1f Mbps", gen.OfferedBps()/1e6)
	}
	goodput := ls.GoodputBps()
	// The paper's testbed achieved only ~10 Mbps under this load; our
	// medium lands in the same regime (well below the ~18 Mbps ceiling).
	if goodput < 6e6 || goodput > 18e6 {
		t.Fatalf("goodput = %.1f Mbps, want saturation regime [6,18]", goodput/1e6)
	}
	if gen.OfferedPackets <= ls.ReceivedPackets {
		t.Fatal("no loss despite overload")
	}
	if u := med.Utilization(); u < 0.7 {
		t.Fatalf("medium utilization = %.2f, want saturated", u)
	}
}

func TestLoadGenStartStopIdempotent(t *testing.T) {
	sim := simtime.New(5)
	fac := &packet.Factory{}
	med := medium.New(sim, phy.Default80211g(), medium.DefaultOptions())
	cfg := DefaultLoadGenConfig()
	cfg.IP = packet.IP(192, 168, 1, 3)
	cfg.MAC = packet.MAC(3)
	cfg.Target = packet.IP(10, 0, 0, 10)
	gen := NewLoadGen(sim, med, fac, cfg, nil)
	gen.Start()
	gen.Start() // no double-start
	sim.RunUntil(100 * time.Millisecond)
	gen.Stop()
	gen.Stop() // no double-stop panic
	sent := gen.OfferedPackets
	sim.RunUntil(500 * time.Millisecond)
	if gen.OfferedPackets != sent {
		t.Fatal("load generator kept sending after Stop")
	}
}
