package tools

import (
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// ExtractLayers walks a run's probe records against the testbed's
// capture infrastructure exactly once and returns every per-layer
// sample at once: du/dk/dn (the paper's §3 layer decomposition) plus
// the derived Δdu−k and Δdk−n overheads (Figures 3 and 7). It is the
// one shared extraction path — LayerSamples, Overheads,
// core.OverheadStats, the experiments suites, and the session methods
// all delegate here instead of re-walking the capture per quantity.
//
// du is the tool-*reported* RTT (quirks included), matching the paper's
// definition of the user-level measurement — so Android ping's integer
// truncation can, as in Fig 3(b)/(d), drive Δdu−k negative.
func ExtractLayers(tb *testbed.Testbed, recs []ProbeRecord) session.Layers {
	var l session.Layers
	for _, rec := range recs {
		if !rec.OK {
			continue
		}
		x := tb.ExtractRTTs(rec.ReqID, rec.RespID, rec.SentAt, rec.RecvAt)
		l.Du = append(l.Du, rec.RTT)
		if x.DkOK {
			l.Dk = append(l.Dk, x.Dk)
			l.DuK = append(l.DuK, rec.RTT-x.Dk)
		}
		if x.DnOK {
			l.Dn = append(l.Dn, x.Dn)
		}
		if d, ok := x.DeltaKN(); ok {
			l.DkN = append(l.DkN, d)
		}
	}
	return l
}

// LayerSamples extracts per-layer RTT samples for the run's successful
// probes. Kept for callers that only want the raw layers; it shares the
// single capture walk of ExtractLayers.
func LayerSamples(tb *testbed.Testbed, r Result) (du, dk, dn stats.Sample) {
	l := ExtractLayers(tb, r.Records)
	return l.Du, l.Dk, l.Dn
}

// Overheads extracts Δdu−k and Δdk−n per probe (Figures 3 and 7) via
// the shared ExtractLayers walk.
func Overheads(tb *testbed.Testbed, r Result) (duk, dkn stats.Sample) {
	l := ExtractLayers(tb, r.Records)
	return l.DuK, l.DkN
}
