package fleet

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/stats"
)

func approxEq(a, b, rel float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= rel*scale
}

// TestMomentsMergeMatchesSinglePass is the aggregator-correctness
// contract: folding a sample in shards and merging must agree with one
// sequential pass over the same values.
func TestMomentsMergeMatchesSinglePass(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	values := make([]float64, 10_000)
	for i := range values {
		values[i] = 30e6 + rng.NormFloat64()*5e6 // ~30ms ± 5ms in ns
	}

	var single Moments
	for _, v := range values {
		single.Add(v)
	}

	for _, shards := range []int{2, 3, 7, 16} {
		parts := make([]Moments, shards)
		for i, v := range values {
			parts[i%shards].Add(v)
		}
		var merged Moments
		for _, p := range parts {
			merged.Merge(p)
		}
		if merged.N != single.N {
			t.Fatalf("shards=%d: N %d vs %d", shards, merged.N, single.N)
		}
		if !approxEq(merged.Mean, single.Mean, 1e-9) {
			t.Errorf("shards=%d: mean %v vs %v", shards, merged.Mean, single.Mean)
		}
		if !approxEq(merged.Variance(), single.Variance(), 1e-6) {
			t.Errorf("shards=%d: variance %v vs %v", shards, merged.Variance(), single.Variance())
		}
		if merged.MinV != single.MinV || merged.MaxV != single.MaxV {
			t.Errorf("shards=%d: min/max %v/%v vs %v/%v", shards, merged.MinV, merged.MaxV, single.MinV, single.MaxV)
		}
	}
}

func TestHistMergeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	single := newDuHist()
	parts := []*Hist{newDuHist(), newDuHist(), newDuHist()}
	for i := 0; i < 50_000; i++ {
		d := time.Duration(rng.Int63n(int64(600 * time.Millisecond)))
		if i%100 == 0 {
			d = -time.Millisecond // exercise Under
		}
		single.Add(d)
		parts[i%3].Add(d)
	}
	merged := newDuHist()
	for _, p := range parts {
		if err := merged.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	if merged.Under != single.Under || merged.Over != single.Over {
		t.Fatalf("under/over: %d/%d vs %d/%d", merged.Under, merged.Over, single.Under, single.Over)
	}
	for i := range merged.Counts {
		if merged.Counts[i] != single.Counts[i] {
			t.Fatalf("bin %d: %d vs %d", i, merged.Counts[i], single.Counts[i])
		}
	}
	if merged.N() != single.N() {
		t.Fatalf("N: %d vs %d", merged.N(), single.N())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if merged.Quantile(q) != single.Quantile(q) {
			t.Errorf("q=%.2f: %v vs %v", q, merged.Quantile(q), single.Quantile(q))
		}
	}
	if err := merged.Merge(NewHist(0, time.Second, 10)); err == nil {
		t.Error("geometry mismatch accepted")
	}
}

func TestHistQuantileAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	h := newDuHist()
	var s stats.Sample
	for i := 0; i < 20_000; i++ {
		d := time.Duration(20*time.Millisecond) + time.Duration(rng.Int63n(int64(80*time.Millisecond)))
		h.Add(d)
		s = append(s, d)
	}
	for _, q := range []float64{0.25, 0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		want := s.Percentile(q * 100)
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		// One histogram bin (0.5ms) of slack.
		if diff > time.Millisecond {
			t.Errorf("q=%.2f: hist %v vs exact %v", q, got, want)
		}
	}
}

// TestGroupAggregateMergeMatchesSinglePass folds synthetic session
// results both sequentially and sharded-then-merged, the exact shape of
// the per-worker aggregation in Run.
func TestGroupAggregateMergeMatchesSinglePass(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	type sess struct {
		r SessionResult
		s stats.Sample
	}
	var sessions []sess
	for i := 0; i < 200; i++ {
		var s stats.Sample
		for j := 0; j < 50; j++ {
			s = append(s, time.Duration(30e6+rng.NormFloat64()*4e6))
		}
		sessions = append(sessions, sess{
			r: SessionResult{
				Sent: 50, Lost: rng.Intn(3), BackgroundSent: 40,
				Inflation:    1 + rng.Float64(),
				LayersOK:     true,
				UserOverhead: time.Duration(rng.Int63n(int64(time.Millisecond))),
				SDIOOverhead: time.Duration(rng.Int63n(int64(2 * time.Millisecond))),
				PSMInflation: time.Duration(rng.Int63n(int64(5 * time.Millisecond))),
				PSMActive:    i%3 == 0,
			},
			s: s,
		})
	}

	single := newGroupAggregate("g")
	for i := range sessions {
		single.fold(&sessions[i].r, sessions[i].s)
	}

	const workers = 6
	parts := make([]*GroupAggregate, workers)
	for w := range parts {
		parts[w] = newGroupAggregate("g")
	}
	for i := range sessions {
		parts[i%workers].fold(&sessions[i].r, sessions[i].s)
	}
	merged := newGroupAggregate("g")
	for _, p := range parts {
		if err := merged.Merge(p); err != nil {
			t.Fatal(err)
		}
	}

	if merged.Sessions != single.Sessions || merged.ProbesSent != single.ProbesSent ||
		merged.ProbesLost != single.ProbesLost || merged.BackgroundSent != single.BackgroundSent ||
		merged.PSMActiveSessions != single.PSMActiveSessions {
		t.Fatalf("counts diverge: %+v vs %+v", merged, single)
	}
	if merged.Du.N != single.Du.N || !approxEq(merged.Du.Mean, single.Du.Mean, 1e-9) ||
		!approxEq(merged.Du.Variance(), single.Du.Variance(), 1e-6) {
		t.Errorf("Du moments diverge: %+v vs %+v", merged.Du, single.Du)
	}
	for i := range merged.DuHist.Counts {
		if merged.DuHist.Counts[i] != single.DuHist.Counts[i] {
			t.Fatalf("hist bin %d: %d vs %d", i, merged.DuHist.Counts[i], single.DuHist.Counts[i])
		}
	}
	for _, pair := range [][2]Moments{
		{merged.Inflation, single.Inflation},
		{merged.UserOverhead, single.UserOverhead},
		{merged.SDIOOverhead, single.SDIOOverhead},
		{merged.PSMInflation, single.PSMInflation},
	} {
		if pair[0].N != pair[1].N || !approxEq(pair[0].Mean, pair[1].Mean, 1e-9) {
			t.Errorf("moments diverge: %+v vs %+v", pair[0], pair[1])
		}
	}
}
