package fleet

import (
	"testing"

	"repro/internal/puncture"
)

// TestCampaignTeachesProfiles: a campaign with a Profiles store emits a
// device-knowledge delta — learned overheads for every attributing
// model (chipset-family keyed) plus the auto-calibrations, all in one
// store a live ingestd can absorb via Store.Merge.
func TestCampaignTeachesProfiles(t *testing.T) {
	c := smallCampaign(4)
	c.Profiles = puncture.NewStore(0)
	c.AutoCalibrate = true
	rep, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d sessions errored", rep.Errors)
	}
	st := c.Profiles
	if st.Len() == 0 {
		t.Fatal("campaign taught nothing")
	}
	// The device-mix scenario runs the paper's five models; every one
	// should have attributed (sim sessions always extract layers) and —
	// with AutoCalibrate and no explicit Registry — been calibrated
	// into the same store.
	if got := st.CalibratedLen(); got != len(rep.CalibratedModels) || got == 0 {
		t.Fatalf("calibrated %d models in store, report says %v", got, rep.CalibratedModels)
	}
	var attributions int64
	for _, p := range st.Profiles() {
		if p.Chipset == "" {
			t.Errorf("%s: profile without chipset-family key", p.Model)
		}
		attributions += p.AttributionSessions()
		if p.AttributionSessions() > 0 {
			if corr, src := st.Resolve(p.Model, ""); src != puncture.SourceLearned || corr < 0 {
				t.Errorf("%s: resolve %v/%v", p.Model, corr, src)
			}
		}
	}
	if attributions != rep.Sessions {
		t.Fatalf("%d attributions for %d sessions", attributions, rep.Sessions)
	}
	// The global prior saw the same stream.
	if g := st.Global(); g.Sessions() != rep.Sessions {
		t.Fatalf("global prior sessions %d != %d", g.Sessions(), rep.Sessions)
	}

	// The delta merges into a fresh (ingestd-side) store.
	live := puncture.NewStore(0)
	if err := live.Merge(st); err != nil {
		t.Fatal(err)
	}
	if live.Len() != st.Len() || live.CalibratedLen() != st.CalibratedLen() {
		t.Fatalf("merge lost knowledge: %d/%d vs %d/%d",
			live.Len(), live.CalibratedLen(), st.Len(), st.CalibratedLen())
	}
}
