package core

import (
	"testing"
	"time"

	"repro/internal/stats"
	"repro/internal/testbed"
	"repro/internal/tools"
)

func TestAcuteMonUnderCrossTraffic(t *testing.T) {
	tb := newTB(30, "", 30*time.Millisecond)
	tb.StartCrossTraffic()
	tb.Sim.RunUntil(300 * time.Millisecond)
	res := New(tb, Config{K: 60}).Run()
	s := res.Sample()
	if len(s) < 54 {
		t.Fatalf("completed %d/60 under load", len(s))
	}
	med := stats.Millis(s.Median())
	// Fig 8(b): shifted right by the congestion but far below the other
	// tools' ~45ms.
	if med < 31 || med > 43 {
		t.Errorf("median under cross traffic = %.2fms", med)
	}
}

func TestHTTPGetProbesUnderCrossTraffic(t *testing.T) {
	tb := newTB(31, "", 30*time.Millisecond)
	tb.StartCrossTraffic()
	tb.Sim.RunUntil(300 * time.Millisecond)
	res := New(tb, Config{K: 40, Probe: ProbeHTTPGet}).Run()
	if len(res.Sample()) < 34 {
		t.Fatalf("completed %d/40", len(res.Sample()))
	}
}

func TestProbeTimeoutCountsAsLost(t *testing.T) {
	tb := newTB(32, "", 30*time.Millisecond)
	// Target a port with no listener: each SYN draws an RST, never a
	// SYN-ACK, so every probe times out.
	mon := New(tb, Config{K: 3, TargetPort: 4444, ProbeTimeout: 300 * time.Millisecond})
	res := mon.Run()
	if res.Lost != 3 {
		t.Fatalf("lost = %d, want 3", res.Lost)
	}
	if len(res.Sample()) != 0 {
		t.Fatal("timed-out probes produced samples")
	}
	if res.Finished <= res.Started {
		t.Fatal("run did not finish cleanly")
	}
}

func TestSnifferLossDoesNotBreakOverheads(t *testing.T) {
	// Failure injection: two of the three sniffers dead, the third very
	// lossy. Overheads can only be computed for probes whose frames were
	// captured, but the run itself must stay intact.
	cfg := testbed.DefaultConfig()
	cfg.Seed = 33
	cfg.SnifferLoss = 0.6
	tb := testbed.New(cfg)
	tb.Sniffers[1].LossProb = 1.0
	tb.Sniffers[2].LossProb = 1.0
	res := New(tb, Config{K: 40}).Run()
	if len(res.Sample()) < 36 {
		t.Fatalf("probe completion harmed by sniffer loss: %d/40", len(res.Sample()))
	}
	_, dkn := OverheadStats(tb, res)
	if len(dkn) == 0 {
		t.Fatal("no Δdk−n at all despite 40% capture rate")
	}
	if len(dkn) >= 40 {
		t.Fatal("loss injection had no effect on capture coverage")
	}
}

func TestBackgroundIntervalRespected(t *testing.T) {
	tb := newTB(34, "", 100*time.Millisecond)
	mon := New(tb, Config{K: 10, BackgroundInterval: 50 * time.Millisecond})
	res := mon.Run()
	elapsed := res.Finished - res.Started
	expected := int(elapsed / (50 * time.Millisecond))
	if res.BackgroundSent < expected-3 || res.BackgroundSent > expected+3 {
		t.Fatalf("bg packets = %d over %v, want ≈%d", res.BackgroundSent, elapsed, expected)
	}
}

func TestNoBackgroundSendsNothing(t *testing.T) {
	tb := newTB(35, "", 30*time.Millisecond)
	res := New(tb, Config{K: 10, NoBackground: true}).Run()
	if res.BackgroundSent != 0 || res.WarmupsSent != 0 {
		t.Fatalf("NoBackground leaked traffic: bg=%d warmup=%d", res.BackgroundSent, res.WarmupsSent)
	}
}

func TestSequentialRunsOnSameTestbed(t *testing.T) {
	// Two AcuteMon campaigns back-to-back must not interfere (socket
	// reuse, ICMP handler leaks, etc).
	tb := newTB(36, "", 20*time.Millisecond)
	r1 := New(tb, Config{K: 20}).Run()
	tb.Sim.RunFor(500 * time.Millisecond)
	r2 := New(tb, Config{K: 20}).Run()
	if len(r1.Sample()) < 18 || len(r2.Sample()) < 18 {
		t.Fatalf("runs interfered: %d, %d", len(r1.Sample()), len(r2.Sample()))
	}
	m1 := stats.Millis(r1.Sample().Median())
	m2 := stats.Millis(r2.Sample().Median())
	if m1 < 19 || m1 > 26 || m2 < 19 || m2 > 26 {
		t.Fatalf("medians off: %.2f / %.2f", m1, m2)
	}
}

func TestAcuteMonAgainstDalvikAppRuntime(t *testing.T) {
	// Even when the *app* is a Dalvik app, the MT runs native (§4.1), so
	// the overhead stays small.
	cfg := testbed.DefaultConfig()
	cfg.Seed = 37
	cfg.Runtime = 1 // android.DalvikVM
	tb := testbed.New(cfg)
	res := New(tb, Config{K: 40}).Run()
	duk, _ := OverheadStats(tb, res)
	if m := stats.Millis(duk.Median()); m > 1 {
		t.Errorf("Δdu−k median = %.2fms despite native MT", m)
	}
}

func TestToolsAndAcuteMonShareSemantics(t *testing.T) {
	// AcuteMon's TCP probe and the raw tool layer must agree on the
	// probe-to-capture mapping (ReqID/RespID populated for every OK
	// record).
	tb := newTB(38, "", 30*time.Millisecond)
	res := New(tb, Config{K: 20}).Run()
	for _, rec := range res.Records {
		if !rec.OK {
			continue
		}
		if rec.ReqID == 0 || rec.RespID == 0 {
			t.Fatalf("record %d missing packet IDs: %+v", rec.Seq, rec)
		}
		if rec.RTT <= 0 {
			t.Fatalf("record %d non-positive RTT", rec.Seq)
		}
	}
	_ = tools.Result{}
}
