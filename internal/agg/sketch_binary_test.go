package agg

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestSketchBinaryRoundTrip: binary encode → decode reproduces the
// canonical (flushed) sketch exactly, and re-encoding is byte-identical
// — the canonical-form contract the JSON path already keeps.
func TestSketchBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 7, 1000, 20000} {
		s := NewSketch(0)
		for i := 0; i < n; i++ {
			s.Add(rng.Float64() * 5e8)
		}
		raw, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var got Sketch
		if err := got.UnmarshalBinary(raw); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := got.Valid(); err != nil {
			t.Fatalf("n=%d: decoded sketch invalid: %v", n, err)
		}
		if got.Count != s.Count || got.MinV != s.MinV || got.MaxV != s.MaxV ||
			got.Compression != s.Compression || len(got.Centroids) != len(s.Centroids) {
			t.Fatalf("n=%d: header mismatch: %+v vs %+v", n, got, s)
		}
		for i := range got.Centroids {
			if got.Centroids[i] != s.Centroids[i] {
				t.Fatalf("n=%d: centroid %d differs", n, i)
			}
		}
		again, err := got.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, again) {
			t.Fatalf("n=%d: re-encode not byte-identical", n)
		}
		// Quantiles survive the trip bit-for-bit.
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if got.Quantile(q) != s.Quantile(q) {
				t.Fatalf("n=%d: q=%g drifted", n, q)
			}
		}
	}
}

// TestSketchBinaryHostile: truncations, hostile counts, and trailing
// garbage must all error without large allocations or panics.
func TestSketchBinaryHostile(t *testing.T) {
	s := NewSketch(0)
	for i := 0; i < 500; i++ {
		s.Add(float64(i) * 1e6)
	}
	raw, _ := s.MarshalBinary()

	// Every strict prefix is truncated somewhere and must fail.
	for i := 0; i < len(raw); i++ {
		var d Sketch
		if err := d.UnmarshalBinary(raw[:i]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded cleanly", i, len(raw))
		}
	}
	// Trailing garbage is rejected: the container's length prefix is the
	// only framing, so slack would hide smuggled bytes.
	var d Sketch
	if err := d.UnmarshalBinary(append(append([]byte{}, raw...), 0x00)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// Unknown version byte.
	bad := append([]byte{}, raw...)
	bad[0] = 99
	if err := d.UnmarshalBinary(bad); err == nil {
		t.Fatal("unknown version accepted")
	}
	// A centroid count past the structural cap must be refused before
	// any allocation sized by it.
	hostile := []byte{sketchBinaryVersion}
	hostile = append(hostile, raw[1:1+8]...) // compression
	hostile = append(hostile, 0x01)          // count = 1
	hostile = append(hostile, raw[1:1+16]...)
	hostile = append(hostile, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01) // huge n
	if err := d.UnmarshalBinary(hostile); err == nil {
		t.Fatal("hostile centroid count accepted")
	}
}
