package ingest

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"
)

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	name string
	data string
}

// readSSE parses frames off an open event stream until it closes,
// delivering them on the returned channel.
func readSSE(t *testing.T, resp *http.Response) <-chan sseEvent {
	t.Helper()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("content type %q; want text/event-stream", ct)
	}
	out := make(chan sseEvent, 64)
	go func() {
		defer close(out)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<24)
		var ev sseEvent
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				if ev.name != "" {
					out <- ev
				}
				ev = sseEvent{}
			case strings.HasPrefix(line, "event: "):
				ev.name = line[len("event: "):]
			case strings.HasPrefix(line, "data: "):
				ev.data = line[len("data: "):]
			}
		}
	}()
	return out
}

// applyDelta folds one stream event into a client-side replica:
// removals first, then upserts — the documented contract.
func applyDelta(replica map[Key]CellStats, ev StreamEvent) {
	if ev.Reset {
		for k := range replica {
			delete(replica, k)
		}
	}
	for _, k := range ev.Removed {
		delete(replica, k)
	}
	for _, c := range ev.Cells {
		replica[c.Key] = c
	}
}

// TestStreamDeltasReproduceStats is the tentpole e2e: a client that
// connects mid-campaign and folds every /v1/stream delta must end up
// with exactly the final polled /stats — counts exact, every derived
// field identical, because deltas carry cumulative cell state.
func TestStreamDeltasReproduceStats(t *testing.T) {
	s := startTestServer(t, Config{Window: -1, QueueDepth: 64, StreamInterval: -1})
	lg := &LoadGen{URL: s.URL(), BatchSize: 5, TimeMS: 1}

	// First wave lands before the client connects: the connect-time
	// snapshot (first delta from cursor 0) must cover it.
	batch1 := benchBatch(20, 8)
	if err := lg.Send(context.Background(), batch1); err != nil {
		t.Fatal(err)
	}
	waitFolded(t, s, 20)

	resp, err := http.Get(s.URL() + "/v1/stream?by=cell")
	if err != nil {
		t.Fatal(err)
	}
	events := readSSE(t, resp)
	replica := map[Key]CellStats{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range events {
			switch ev.name {
			case "delta":
				var delta StreamEvent
				if err := json.Unmarshal([]byte(ev.data), &delta); err != nil {
					t.Errorf("bad delta: %v", err)
					return
				}
				applyDelta(replica, delta)
			case "drain":
				return
			}
		}
		t.Error("stream closed without a drain event")
	}()

	// Second wave streams live while the subscriber is attached.
	batch2 := benchBatch(30, 8)
	for i := range batch2 {
		batch2[i].Scenario = "wave2"
	}
	if err := lg.Send(context.Background(), batch2); err != nil {
		t.Fatal(err)
	}
	waitFolded(t, s, 50)

	// Final truth: poll /stats once everything folded, then drain. The
	// drain flush delivers anything the subscriber has not seen yet.
	want := map[Key]CellStats{}
	statsResp, err := http.Get(s.URL() + "/stats?by=cell")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	statsResp.Body.Close()
	for _, c := range stats.Cells {
		want[c.Key] = c
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("stream client did not finish after drain")
	}

	if len(replica) != len(want) {
		t.Fatalf("replica has %d cells, /stats has %d", len(replica), len(want))
	}
	for k, w := range want {
		g, ok := replica[k]
		if !ok {
			t.Fatalf("cell %+v missing from stream replica", k)
		}
		if !reflect.DeepEqual(g, w) {
			t.Errorf("cell %+v diverges:\n stream %+v\n  stats %+v", k, g, w)
		}
	}
	if s.metrics.StreamEvents.Load() == 0 {
		t.Error("stream_events counter never advanced")
	}
}

// TestStreamLongPoll exercises the ?poll=1 fallback: an empty store
// answers with just a cursor after the wait budget; once data folds, a
// poll past that cursor returns the delta immediately.
func TestStreamLongPoll(t *testing.T) {
	s := startTestServer(t, Config{Window: -1, StreamInterval: -1})

	get := func(url string) StreamEvent {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %s", resp.Status)
		}
		var ev StreamEvent
		if err := json.NewDecoder(resp.Body).Decode(&ev); err != nil {
			t.Fatal(err)
		}
		return ev
	}

	empty := get(s.URL() + "/v1/stream?poll=1&wait=50ms")
	if len(empty.Cells) != 0 {
		t.Fatalf("empty store answered cells: %+v", empty.Cells)
	}

	lg := &LoadGen{URL: s.URL(), TimeMS: 1}
	if err := lg.Send(context.Background(), benchBatch(10, 4)); err != nil {
		t.Fatal(err)
	}
	waitFolded(t, s, 10)
	ev := get(fmt.Sprintf("%s/v1/stream?poll=1&since=%d&wait=5s", s.URL(), empty.Epoch))
	if len(ev.Cells) == 0 {
		t.Fatal("poll past the cursor returned no cells after folds")
	}
	if ev.Epoch <= empty.Epoch {
		t.Fatalf("cursor did not advance: %d -> %d", empty.Epoch, ev.Epoch)
	}

	// Filters mirror /stats params.
	dev := ev.Cells[0].Key.Device
	fev := get(fmt.Sprintf("%s/v1/stream?poll=1&device=%s&wait=50ms", s.URL(), strings.ReplaceAll(dev, " ", "%20")))
	if len(fev.Cells) == 0 {
		t.Fatal("device filter matched nothing")
	}
	for _, c := range fev.Cells {
		if c.Key.Device != dev {
			t.Fatalf("filter device=%s leaked %+v", dev, c.Key)
		}
	}
}

// TestStreamSubscriberLimit: past MaxSubscribers, new stream clients
// get 503 + Retry-After and the rejection is counted.
func TestStreamSubscriberLimit(t *testing.T) {
	s := startTestServer(t, Config{Window: -1, MaxSubscribers: 1})
	resp, err := http.Get(s.URL() + "/v1/stream?by=cell")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := readSSE(t, resp)
	select {
	case ev := <-events:
		if ev.name != "hello" {
			t.Fatalf("first frame %q; want hello", ev.name)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no hello frame")
	}

	second, err := http.Get(s.URL() + "/v1/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer second.Body.Close()
	if second.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second subscriber got %s; want 503", second.Status)
	}
	if second.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if s.metrics.StreamRejected.Load() != 1 {
		t.Errorf("stream_rejected = %d; want 1", s.metrics.StreamRejected.Load())
	}
	if got := s.streamSubscribers(); got != 1 {
		t.Errorf("subscriber gauge = %d; want 1", got)
	}
}

// TestBroadcasterCoalesce: a slow subscriber that never drains its wake
// slot absorbs any number of pokes into one pending wake, counted as
// coalesced — the bounded-queue guarantee that makes slow clients safe.
func TestBroadcasterCoalesce(t *testing.T) {
	b := newBroadcaster(-1, 4)
	defer b.shutdown()
	sub, err := b.subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer b.unsubscribe(sub)
	deadline := time.Now().Add(5 * time.Second)
	for b.coalesced.Load() == 0 {
		b.poke()
		if time.Now().After(deadline) {
			t.Fatal("coalesced counter never advanced for a stalled subscriber")
		}
		time.Sleep(time.Millisecond)
	}
	// The stalled subscriber still holds exactly one pending wake.
	select {
	case <-sub.wake:
	default:
		t.Fatal("no pending wake despite pokes")
	}
	select {
	case <-sub.wake:
		t.Fatal("more than one wake buffered")
	default:
	}
}

// TestBroadcasterDrainRejectsSubscribe: after shutdown begins, new
// subscriptions are refused.
func TestBroadcasterDrainRejectsSubscribe(t *testing.T) {
	b := newBroadcaster(-1, 4)
	b.shutdown()
	if _, err := b.subscribe(); err == nil {
		t.Fatal("subscribe succeeded on a draining broadcaster")
	}
}

// TestChurnSteadyState is the bounded-memory acceptance check: rotating
// device identities marching through event time must hold resident fine
// cells at the cap with compaction preserving every session count, all
// visible in /metrics and /healthz.
func TestChurnSteadyState(t *testing.T) {
	const (
		window    = 200 * time.Millisecond
		retention = 600 * time.Millisecond
		cap       = 8
	)
	s := startTestServer(t, Config{
		Window: window, Retention: retention, CompactWindow: time.Second,
		// Default shard count on purpose: churn keys hash unevenly
		// across shards, so holding the cap drop-free exercises the
		// cross-shard eviction fallback, not just the local fast path.
		MaxCells: cap, StreamInterval: -1,
	})
	lg := &LoadGen{URL: s.URL(), BatchSize: 16}
	windowMS := window.Milliseconds()
	startMS := time.Now().Add(-retention).UnixMilli() + windowMS
	// Rounds are paced through the fold stage (like real time paces
	// churn): eviction only demotes strictly-older windows, so rounds
	// must land in order for rotation to be drop-free.
	posted := 0
	for r := 0; r < 6; r++ {
		n, err := lg.Churn(context.Background(), ChurnSpec{
			Rounds: 1, Keys: cap, Sessions: 1, RTTsPer: 2,
			StartMS: startMS + int64(r)*windowMS,
			StepMS:  windowMS,
		})
		if err != nil {
			t.Fatal(err)
		}
		posted += n
		waitFolded(t, s, int64(posted))
	}
	if posted != 6*cap {
		t.Fatalf("posted %d summaries; want %d", posted, 6*cap)
	}
	if got := s.Store().Cells(); got > cap {
		t.Fatalf("%d resident cells exceed cap %d during churn", got, cap)
	}
	if s.Store().Dropped() != 0 {
		t.Fatalf("%d summaries dropped; eviction should absorb rotation", s.Store().Dropped())
	}

	// The janitor (interval = window = 200ms) compacts each window as it
	// ages past retention; wait for the counters to advance.
	deadline := time.Now().Add(15 * time.Second)
	for {
		m := s.MetricsSnapshot()
		if m["compacted_cells"]+m["evicted_cells"] >= int64(posted-cap) &&
			m["compaction_cycles"] > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retention never reached steady state: %+v", m)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Lossless: every folded session remains queryable across tiers.
	cells, err := s.Store().Query(RollupGroup)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range cells {
		total += c.Sessions
	}
	if total != int64(posted) {
		t.Fatalf("%d sessions queryable; %d folded — retention lost data", total, posted)
	}

	// Visible in /healthz…
	hresp, err := http.Get(s.URL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Cells       int64            `json:"cells"`
		MaxCells    int64            `json:"max_cells"`
		RollupCells int64            `json:"rollup_cells"`
		Counters    map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if health.MaxCells != cap || health.Cells > cap {
		t.Errorf("healthz cells=%d max_cells=%d; want <=%d, %d", health.Cells, health.MaxCells, cap, cap)
	}
	if health.RollupCells == 0 {
		t.Error("healthz rollup_cells = 0 after compaction")
	}
	if health.Counters["compacted_sessions"]+health.Counters["evicted_cells"] == 0 {
		t.Error("healthz retention counters never advanced")
	}

	// …and in /metrics (Prometheus text exposition).
	mresp, err := http.Get(s.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := new(strings.Builder)
	if _, err := io.Copy(body, mresp.Body); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	text := body.String()
	for _, want := range []string{
		"# TYPE acutemon_compacted_cells_total counter",
		"# TYPE acutemon_rollup_cells gauge",
		"acutemon_cells ",
		"acutemon_max_cells 8",
		"acutemon_up 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
