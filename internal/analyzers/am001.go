package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AM001 enforces sim determinism: the simulated testbeds must produce
// bit-identical results for a given seed (the PR-4 contract that keeps
// golden examples and the ingest e2e determinism fixtures meaningful).
// Three mechanically detectable ways a change breaks that:
//
//   - time.Now — wall-clock reads in a sim path make results depend on
//     the host; sim code reads the Sim clock.
//   - the global math/rand source — process-seeded, shared across
//     goroutines; sim code draws from its seeded *rand.Rand.
//   - emitting output in map iteration order — Go randomizes it per
//     run; collect keys and sort before appending or printing.
type AM001 struct{}

func (AM001) Code() string { return "AM001" }
func (AM001) Name() string { return "sim-determinism" }
func (AM001) Doc() string {
	return "sim paths must stay bit-deterministic: no time.Now, global math/rand, or map-ordered output"
}

// am001Scope is where determinism is load-bearing: the simulated clock
// itself and the core measurement engine that runs on it.
var am001Scope = []string{
	"repro/internal/simtime",
	"repro/internal/core",
}

// nondetRand is every math/rand package-level function that draws from
// (or reseeds) the process-global source. Constructors (New, NewSource,
// NewZipf) are fine: they are how sim code builds its seeded generator.
var nondetRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true,
	"Read": true, "Seed": true,
}

func (a AM001) Run(m *Module, report func(token.Position, string)) {
	for _, pkg := range m.Pkgs {
		if !inScope(pkg.Path, am001Scope) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					obj := pkg.Info.Uses[n.Sel]
					if isPkgFunc(obj, "time", "Now") {
						report(m.Fset.Position(n.Pos()),
							"time.Now in a sim path breaks bit-determinism; use the Sim clock")
					}
					if obj != nil && obj.Pkg() != nil &&
						(obj.Pkg().Path() == "math/rand" || obj.Pkg().Path() == "math/rand/v2") &&
						nondetRand[obj.Name()] && isPackageLevelFunc(obj) {
						report(m.Fset.Position(n.Pos()),
							fmt.Sprintf("global math/rand.%s is process-seeded; draw from the session's seeded *rand.Rand", obj.Name()))
					}
				case *ast.BlockStmt:
					a.checkMapOrder(m, pkg, n.List, report)
				}
				return true
			})
		}
	}
}

// isPackageLevelFunc distinguishes rand.Intn (global source) from the
// identically-named methods on a seeded *rand.Rand.
func isPackageLevelFunc(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// checkMapOrder flags map-range loops whose iteration order escapes
// into output: printing inside the loop, or appending to a slice
// declared outside the loop that is not sorted later in the same
// block. The fix idiom — collect keys, sort, iterate the slice — is
// recognized and not flagged.
func (a AM001) checkMapOrder(m *Module, pkg *Package, stmts []ast.Stmt, report func(token.Position, string)) {
	for i, stmt := range stmts {
		rs, ok := stmt.(*ast.RangeStmt)
		if !ok {
			continue
		}
		tv, ok := pkg.Info.Types[rs.X]
		if !ok {
			continue
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			continue
		}
		collected := map[types.Object]bool{}
		ast.Inspect(rs.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if obj := calleeObj(pkg.Info, n); obj != nil && obj.Pkg() != nil &&
					obj.Pkg().Path() == "fmt" && obj.Name() != "Errorf" && obj.Name() != "Sprintf" {
					report(m.Fset.Position(n.Pos()),
						"output emitted in map iteration order is nondeterministic; collect keys and sort first")
				}
			case *ast.AssignStmt:
				// x = append(x, ...) where x lives outside the loop.
				for j, rhs := range n.Rhs {
					call, ok := unparen(rhs).(*ast.CallExpr)
					if !ok || len(n.Lhs) <= j {
						continue
					}
					fn, ok := unparen(call.Fun).(*ast.Ident)
					if !ok || fn.Name != "append" {
						continue
					}
					if _, isBuiltin := pkg.Info.Uses[fn].(*types.Builtin); !isBuiltin {
						continue
					}
					id, ok := unparen(n.Lhs[j]).(*ast.Ident)
					if !ok {
						continue
					}
					obj := pkg.Info.Uses[id]
					if obj == nil {
						obj = pkg.Info.Defs[id]
					}
					if obj != nil && (obj.Pos() < rs.Pos() || obj.Pos() > rs.End()) {
						collected[obj] = true
					}
				}
			}
			return true
		})
		for obj := range collected {
			if !a.sortedLater(pkg, stmts[i+1:], obj) {
				report(m.Fset.Position(rs.Pos()),
					fmt.Sprintf("%s is filled in map iteration order and never sorted; sort it before use", obj.Name()))
			}
		}
	}
}

// sortedLater reports whether a later statement in the same block sorts
// the collected slice (any sort.* / slices.Sort* call referencing it).
func (AM001) sortedLater(pkg *Package, rest []ast.Stmt, obj types.Object) bool {
	target := map[types.Object]bool{obj: true}
	for _, stmt := range rest {
		sorted := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || sorted {
				return !sorted
			}
			cobj := calleeObj(pkg.Info, call)
			if cobj == nil || cobj.Pkg() == nil {
				return true
			}
			if p := cobj.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if usesObject(pkg.Info, arg, target) {
					sorted = true
				}
			}
			return !sorted
		})
		if sorted {
			return true
		}
	}
	return false
}
