// Package benchfmt is the shared schema and parser for the repo's
// benchmark records: `go test -bench` text output parsed into the JSON
// document CI archives as BENCH_N.json. cmd/bench2json writes the
// format; cmd/benchdiff reads two of them and gates on regressions.
// The JSON field names are frozen — committed BENCH artifacts from
// earlier PRs must keep parsing.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Pkg        string             `json:"pkg"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// BaseName returns the benchmark name with the trailing GOMAXPROCS
// suffix ("-8") stripped, so records from hosts with different core
// counts compare by the same key. Sub-benchmark slashes are kept.
func (b Benchmark) BaseName() string {
	name := b.Name
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name
}

// Key identifies a benchmark across runs: package path plus the
// GOMAXPROCS-stripped name.
func (b Benchmark) Key() string { return b.Pkg + "." + b.BaseName() }

// Output is the whole document.
type Output struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Failures   []string    `json:"failures,omitempty"`
}

// ByKey indexes the benchmarks by Key. Duplicate keys (re-run
// benchmarks) keep the last occurrence.
func (o *Output) ByKey() map[string]Benchmark {
	m := make(map[string]Benchmark, len(o.Benchmarks))
	for _, b := range o.Benchmarks {
		m[b.Key()] = b
	}
	return m
}

// Parse reads `go test -bench` text output and collects benchmark
// lines, platform headers, and FAIL lines. Unrecognized lines are
// ignored, so mixed test/bench logs parse cleanly.
func Parse(r io.Reader) (Output, error) {
	out := Output{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			out.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "FAIL"):
			out.Failures = append(out.Failures, strings.TrimSpace(line))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := ParseLine(pkg, line); ok {
				out.Benchmarks = append(out.Benchmarks, b)
			}
		}
	}
	return out, sc.Err()
}

// ParseLine parses "BenchmarkName-8  3550  670815 ns/op  149072
// summaries/sec" into name, iteration count, and value/unit metric
// pairs.
func ParseLine(pkg, line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Pkg: pkg, Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// ReadFile loads a BENCH_N.json document written by cmd/bench2json.
func ReadFile(path string) (Output, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Output{}, err
	}
	var out Output
	if err := json.Unmarshal(data, &out); err != nil {
		return Output{}, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	return out, nil
}
