package core

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func validEntry() RegistryEntry {
	return RegistryEntry{
		Model: "Google Nexus 5", Chipset: "BCM4339",
		Tip: 205 * time.Millisecond, Tis: 50 * time.Millisecond,
		Warmup: 20 * time.Millisecond, Interval: 20 * time.Millisecond,
		Samples: 8,
	}
}

func TestRegistryPutGet(t *testing.T) {
	r := NewRegistry()
	if err := r.Put(validEntry()); err != nil {
		t.Fatal(err)
	}
	e, ok := r.Get("Google Nexus 5")
	if !ok || e.Tip != 205*time.Millisecond {
		t.Fatalf("Get = %+v, %v", e, ok)
	}
	if _, ok := r.Get("iPhone"); ok {
		t.Fatal("found nonexistent entry")
	}
	if r.Len() != 1 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestRegistryValidation(t *testing.T) {
	r := NewRegistry()
	bad := []RegistryEntry{
		{},           // no model
		{Model: "X"}, // zero db/dpre
		{Model: "X", Warmup: 1, Interval: 60 * time.Millisecond, Tis: 50 * time.Millisecond, Tip: 200 * time.Millisecond}, // db >= Tis
	}
	for i, e := range bad {
		if err := r.Put(e); err == nil {
			t.Errorf("entry %d accepted: %+v", i, e)
		}
	}
}

func TestRegistrySaveLoadRoundtrip(t *testing.T) {
	r := NewRegistry()
	e1 := validEntry()
	e2 := validEntry()
	e2.Model = "Google Nexus 4"
	e2.Tip = 40 * time.Millisecond
	e2.Interval = 15 * time.Millisecond
	e2.Warmup = 15 * time.Millisecond
	if err := r.Put(e1); err != nil {
		t.Fatal(err)
	}
	if err := r.Put(e2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRegistry(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("loaded %d entries", loaded.Len())
	}
	got, _ := loaded.Get("Google Nexus 4")
	if got.Tip != 40*time.Millisecond || got.Interval != 15*time.Millisecond {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
	models := loaded.Models()
	if len(models) != 2 || models[0] != "Google Nexus 4" {
		t.Fatalf("models = %v", models)
	}
}

func TestLoadRejectsCorruptJSON(t *testing.T) {
	if _, err := LoadRegistry(strings.NewReader("{not json")); err == nil {
		t.Fatal("corrupt JSON accepted")
	}
	// Valid JSON, invalid entry.
	if _, err := LoadRegistry(strings.NewReader(`[{"model":"X"}]`)); err == nil {
		t.Fatal("invalid entry accepted")
	}
}

func TestConfigFor(t *testing.T) {
	r := NewRegistry()
	if err := r.Put(validEntry()); err != nil {
		t.Fatal(err)
	}
	cfg, ok := r.ConfigFor("Google Nexus 5", Config{K: 50})
	if !ok {
		t.Fatal("ConfigFor miss")
	}
	if cfg.WarmupDelay != 20*time.Millisecond || cfg.BackgroundInterval != 20*time.Millisecond || cfg.K != 50 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if _, ok := r.ConfigFor("unknown", Config{}); ok {
		t.Fatal("ConfigFor hit for unknown model")
	}
}

func TestCalibrateIntoBuildsDatabase(t *testing.T) {
	r := NewRegistry()
	for _, phone := range []string{"Google Nexus 4", "Google Nexus 5"} {
		tb := newTB(int64(len(phone)), phone, 30*time.Millisecond)
		e, err := r.CalibrateInto(tb, CalibrateOptions{TipRounds: 4, PairsPerGap: 3})
		if err != nil {
			t.Fatalf("%s: %v", phone, err)
		}
		if e.Samples < 3 {
			t.Errorf("%s: only %d Tip samples", phone, e.Samples)
		}
	}
	if r.Len() != 2 {
		t.Fatalf("registry has %d entries", r.Len())
	}
	// The database then drives a measurement without re-calibrating.
	tb := newTB(99, "Google Nexus 4", 60*time.Millisecond)
	cfg, ok := r.ConfigFor("Google Nexus 4", Config{K: 30})
	if !ok {
		t.Fatal("no stored config for Nexus 4")
	}
	tb.Sim.RunUntil(300 * time.Millisecond)
	res := New(tb, cfg).Run()
	if len(res.Sample()) < 27 {
		t.Fatalf("completed %d/30", len(res.Sample()))
	}
	med := res.Sample().Median()
	if med < 60*time.Millisecond || med > 66*time.Millisecond {
		t.Fatalf("median = %v, want ≈61-64ms (no PSM inflation)", med)
	}
}
