//go:build !race

package agg

const raceDetectorEnabled = false
