//go:build !linux && !darwin

package live

import (
	"errors"
	"net"
)

// setTTL is unavailable on this platform; background packets are sent
// with the default TTL and the Result notes TTLLimited=false.
func setTTL(*net.UDPConn, int) error {
	return errors.New("live: TTL control not supported on this platform")
}
