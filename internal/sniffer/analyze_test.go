package sniffer

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/simtime"
	"repro/internal/stats"
)

// buildCapture synthesises a capture containing one full PSM episode and
// one ICMP exchange.
func buildCapture(t *testing.T) *Sniffer {
	t.Helper()
	sim := simtime.New(1)
	s := New(sim, "A", 0)
	fac := &packet.Factory{}
	phone, ap := packet.MAC(1), packet.MAC(9)

	add := func(ts time.Duration, p *packet.Packet) {
		s.CaptureFrame(p, ts-50*time.Microsecond, ts)
	}
	// Echo request on air at 10ms, reply at 45ms.
	add(10*time.Millisecond, fac.NewPacket(
		&packet.Dot11{Type: packet.Dot11Data, Subtype: packet.SubtypeData, ToDS: true, Addr1: ap, Addr2: phone, Addr3: ap},
		&packet.IPv4{TTL: 64, Protocol: packet.ProtoICMP, Src: packet.IP(192, 168, 1, 2), Dst: packet.IP(10, 0, 0, 9)},
		&packet.ICMP{Type: packet.ICMPEchoRequest, ID: 7, Seq: 1}))
	// Phone dozes at 60ms.
	add(60*time.Millisecond, fac.NewPacket(
		&packet.Dot11{Type: packet.Dot11Data, Subtype: packet.SubtypeNullData, ToDS: true, PwrMgmt: true, Addr1: ap, Addr2: phone, Addr3: ap}))
	// Beacon with TIM at 102.4ms.
	add(102400*time.Microsecond, fac.NewPacket(
		&packet.Dot11{Type: packet.Dot11Management, Subtype: packet.SubtypeBeacon, Addr1: packet.BroadcastMAC, Addr2: ap, Addr3: ap},
		&packet.Beacon{IntervalTU: 100, BufferedAIDs: []uint16{1}}))
	// PS-Poll at 103ms.
	add(103*time.Millisecond, fac.NewPacket(
		&packet.Dot11{Type: packet.Dot11Control, Subtype: packet.SubtypePSPoll, Addr1: ap, Addr2: phone}))
	// Buffered echo reply delivered at 104ms.
	add(104*time.Millisecond, fac.NewPacket(
		&packet.Dot11{Type: packet.Dot11Data, Subtype: packet.SubtypeData, FromDS: true, Addr1: phone, Addr2: ap, Addr3: ap},
		&packet.IPv4{TTL: 63, Protocol: packet.ProtoICMP, Src: packet.IP(10, 0, 0, 9), Dst: packet.IP(192, 168, 1, 2)},
		&packet.ICMP{Type: packet.ICMPEchoReply, ID: 7, Seq: 1}))
	return s
}

func TestAnalyzeCaptureDetectsPSMEpisode(t *testing.T) {
	a := AnalyzeCapture(buildCapture(t))
	if !a.PSMActive() {
		t.Fatal("PSM episode not detected")
	}
	if a.NullPM1 != 1 || a.PSPolls != 1 || a.TIMIndications != 1 {
		t.Fatalf("analysis = %s", a)
	}
	if len(a.EchoRTTs) != 1 {
		t.Fatalf("echo RTTs = %d, want 1", len(a.EchoRTTs))
	}
	// 10ms → 104ms: the beacon-delayed RTT.
	if got := a.EchoRTTs[0]; got != 94*time.Millisecond {
		t.Fatalf("echo RTT = %v, want 94ms", got)
	}
}

func TestAnalyzePcapRoundtrip(t *testing.T) {
	s := buildCapture(t)
	var buf bytes.Buffer
	if err := s.WritePcap(&buf); err != nil {
		t.Fatal(err)
	}
	a, err := AnalyzePcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !a.PSMActive() || len(a.EchoRTTs) != 1 {
		t.Fatalf("pcap analysis lost information: %s", a)
	}
	if a.Frames != 5 {
		t.Fatalf("frames = %d, want 5", a.Frames)
	}
}

func TestAnalyzePcapRejectsWrongLinkType(t *testing.T) {
	var buf bytes.Buffer
	w := packet.NewPcapWriter(&buf, packet.LinkTypeRaw)
	if err := w.WritePacket(0, []byte{0x45, 0, 0, 20}); err != nil {
		t.Fatal(err)
	}
	if _, err := AnalyzePcap(&buf); err == nil {
		t.Fatal("raw-IP pcap accepted as 802.11")
	}
}

func TestAnalyzeTCPConnectRTT(t *testing.T) {
	sim := simtime.New(2)
	s := New(sim, "A", 0)
	fac := &packet.Factory{}
	phone, ap := packet.MAC(1), packet.MAC(9)
	syn := fac.NewPacket(
		&packet.Dot11{Type: packet.Dot11Data, Subtype: packet.SubtypeData, ToDS: true, Addr1: ap, Addr2: phone, Addr3: ap},
		&packet.IPv4{TTL: 64, Protocol: packet.ProtoTCP, Src: packet.IP(192, 168, 1, 2), Dst: packet.IP(10, 0, 0, 9)},
		&packet.TCP{SrcPort: 40001, DstPort: 80, Seq: 1000, Flags: packet.TCPSyn})
	synAck := fac.NewPacket(
		&packet.Dot11{Type: packet.Dot11Data, Subtype: packet.SubtypeData, FromDS: true, Addr1: phone, Addr2: ap, Addr3: ap},
		&packet.IPv4{TTL: 63, Protocol: packet.ProtoTCP, Src: packet.IP(10, 0, 0, 9), Dst: packet.IP(192, 168, 1, 2)},
		&packet.TCP{SrcPort: 80, DstPort: 40001, Seq: 555, Ack: 1001, Flags: packet.TCPSyn | packet.TCPAck})
	s.CaptureFrame(syn, 0, 5*time.Millisecond)
	s.CaptureFrame(synAck, 0, 36*time.Millisecond)
	a := AnalyzeCapture(s)
	if len(a.ConnectRTTs) != 1 || a.ConnectRTTs[0] != 31*time.Millisecond {
		t.Fatalf("connect RTTs = %v", a.ConnectRTTs)
	}
	if a.PSMActive() {
		t.Fatal("clean capture flagged as PSM-active")
	}
}

func TestAnalyzeMergedOrdersFrames(t *testing.T) {
	sim := simtime.New(3)
	a := New(sim, "A", 0)
	b := New(sim, "B", 0)
	fac := &packet.Factory{}
	phone, ap := packet.MAC(1), packet.MAC(9)
	req := fac.NewPacket(
		&packet.Dot11{Type: packet.Dot11Data, Subtype: packet.SubtypeData, ToDS: true, Addr1: ap, Addr2: phone, Addr3: ap},
		&packet.IPv4{TTL: 64, Protocol: packet.ProtoICMP, Src: packet.IP(192, 168, 1, 2), Dst: packet.IP(10, 0, 0, 9)},
		&packet.ICMP{Type: packet.ICMPEchoRequest, ID: 1, Seq: 1})
	rep := fac.NewPacket(
		&packet.Dot11{Type: packet.Dot11Data, Subtype: packet.SubtypeData, FromDS: true, Addr1: phone, Addr2: ap, Addr3: ap},
		&packet.IPv4{TTL: 63, Protocol: packet.ProtoICMP, Src: packet.IP(10, 0, 0, 9), Dst: packet.IP(192, 168, 1, 2)},
		&packet.ICMP{Type: packet.ICMPEchoReply, ID: 1, Seq: 1})
	// Sniffer A missed the request; B heard both.
	b.CaptureFrame(req.Clone(), 0, 10*time.Millisecond)
	a.CaptureFrame(rep.Clone(), 0, 40*time.Millisecond)
	b.CaptureFrame(rep.Clone(), 0, 41*time.Millisecond) // later copy, dedup keeps A's
	an := AnalyzeMerged(Merge(a, b))
	if len(an.EchoRTTs) != 1 || an.EchoRTTs[0] != 30*time.Millisecond {
		t.Fatalf("merged echo RTTs = %v, want [30ms]", an.EchoRTTs)
	}
}

// End-to-end check against Table 5's methodology lives in the
// experiments package; here we confirm the stats plumbing.
func TestAnalysisStatsUsable(t *testing.T) {
	a := AnalyzeCapture(buildCapture(t))
	var s stats.Sample = a.EchoRTTs
	if s.Mean() == 0 {
		t.Fatal("sample not usable")
	}
	if a.String() == "" {
		t.Fatal("empty string form")
	}
}
