// Command acutemon runs one measurement on the simulated testbed and
// prints the resulting RTT distribution and per-layer overheads.
//
// Usage:
//
//	acutemon [-phone "Google Nexus 5"] [-rtt 30ms] [-tool acutemon|ping|httping|javaping|ping2]
//	         [-count 100] [-interval 1s] [-cross] [-seed 1] [-calibrate]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/android"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/testbed"
	"repro/internal/tools"
)

func main() {
	phone := flag.String("phone", "Google Nexus 5", "phone model (see Table 1)")
	rtt := flag.Duration("rtt", 30*time.Millisecond, "emulated path RTT")
	tool := flag.String("tool", "acutemon", "measurement tool: acutemon|ping|httping|javaping|ping2")
	count := flag.Int("count", 100, "probe count")
	interval := flag.Duration("interval", time.Second, "probe interval (comparison tools)")
	cross := flag.Bool("cross", false, "enable iPerf cross traffic (§4.3)")
	seed := flag.Int64("seed", 1, "random seed")
	calibrate := flag.Bool("calibrate", false, "calibrate Tis/Tip first and use the recommended dpre/db")
	pcapPath := flag.String("pcap", "", "write sniffer A's capture to this .pcap file")
	flag.Parse()

	prof, ok := android.ProfileByName(*phone)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown phone %q; options:\n", *phone)
		for _, p := range android.Profiles() {
			fmt.Fprintf(os.Stderr, "  %s\n", p.Model)
		}
		os.Exit(2)
	}

	cfg := testbed.DefaultConfig()
	cfg.Seed = *seed
	cfg.Phone = prof
	cfg.EmulatedRTT = *rtt
	tb := testbed.New(cfg)
	if *cross {
		tb.StartCrossTraffic()
	}
	tb.Sim.RunUntil(300 * time.Millisecond) // let the idle phone settle

	fmt.Printf("testbed: %s, emulated RTT %v, cross traffic %v\n", prof.Model, *rtt, *cross)

	var sample stats.Sample
	var layered *tools.Result
	switch *tool {
	case "acutemon":
		amCfg := core.Config{K: *count}
		if *calibrate {
			res, cal := core.RunCalibrated(tb, amCfg, core.CalibrateOptions{})
			fmt.Printf("calibration: Tip≈%v Tis≈%v → dpre=db=%v\n",
				cal.Tip.Round(time.Millisecond), cal.Tis, cal.RecommendedInterval)
			sample = res.Sample()
			layered = &res.Result
			fmt.Printf("background packets sent: %d (all dropped at the gateway)\n", res.BackgroundSent)
		} else {
			res := core.New(tb, amCfg).Run()
			sample = res.Sample()
			layered = &res.Result
			fmt.Printf("background packets sent: %d (all dropped at the gateway)\n", res.BackgroundSent)
		}
	case "ping":
		res := tools.Ping(tb, tools.PingOptions{Count: *count, Interval: *interval})
		sample, layered = res.Sample(), res
	case "httping":
		res := tools.HTTPing(tb, tools.HTTPingOptions{Count: *count, Interval: *interval})
		sample, layered = res.Sample(), res
	case "javaping":
		res := tools.JavaPing(tb, tools.JavaPingOptions{Count: *count, Interval: *interval})
		sample, layered = res.Sample(), res
	case "ping2":
		res := tools.Ping2(tb, tools.Ping2Options{Rounds: *count, Gap: *interval})
		sample, layered = res.Sample(), res
	default:
		fmt.Fprintf(os.Stderr, "unknown tool %q\n", *tool)
		os.Exit(2)
	}

	if len(sample) == 0 {
		fmt.Println("no probes completed")
		os.Exit(1)
	}
	fmt.Printf("\n%s RTTs: %s\n", *tool, sample.Summarize())
	fmt.Println(report.RenderCDF(*tool, stats.NewECDF(sample), 48))

	du, dk, dn := tools.LayerSamples(tb, *layered)
	if len(dn) > 0 {
		fmt.Printf("per-layer means: du=%.2fms dk=%.2fms dn=%.2fms\n",
			stats.Millis(du.Mean()), stats.Millis(dk.Mean()), stats.Millis(dn.Mean()))
		duk, dkn := tools.Overheads(tb, *layered)
		fmt.Printf("overheads: Δdu−k median=%.2fms, Δdk−n median=%.2fms (paper target: sum < 3ms under AcuteMon)\n",
			stats.Millis(duk.Median()), stats.Millis(dkn.Median()))
	}

	if *pcapPath != "" {
		f, err := os.Create(*pcapPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pcap:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := tb.Sniffers[0].WritePcap(f); err != nil {
			fmt.Fprintln(os.Stderr, "pcap:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d captured frames to %s (802.11 link type; open with tcpdump/Wireshark)\n",
			len(tb.Sniffers[0].Records()), *pcapPath)
	}
}
