// Package android assembles a simulated smartphone out of the substrate
// layers — app runtime, kernel stack, WNIC driver with bus power
// management, and the 802.11 STA MAC — and ships the five device
// profiles of the paper's Table 1, with the PSM parameters measured in
// Table 4 and the bus/driver behaviour of §3.2.
package android

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/driver"
	"repro/internal/kernel"
	"repro/internal/mac"
	"repro/internal/medium"
	"repro/internal/packet"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// Runtime selects the app execution environment. The paper shows
// (building on [23]) that Dalvik adds user-kernel overhead that a
// pre-compiled native C binary avoids — AcuteMon's measurement thread is
// native for exactly this reason.
type Runtime int

// Runtimes.
const (
	NativeC Runtime = iota
	DalvikVM
)

// String implements fmt.Stringer.
func (r Runtime) String() string {
	if r == NativeC {
		return "native-c"
	}
	return "dalvik"
}

// Profile describes one smartphone model (Table 1 + Table 4).
type Profile struct {
	Model      string
	AndroidVer string
	CPUGHz     float64
	Cores      int
	RAMMB      int
	Chipset    string

	// DriverConfig returns the WNIC driver model for this chipset.
	DriverConfig func() driver.Config

	// PSMTimeout is Tip from Table 4.
	PSMTimeout time.Duration
	// AssocListenInterval is the listen interval announced at
	// association (1 for wcnss, 10 for bcmdhd); ActualListenInterval is
	// what the firmware actually uses (0 ⇒ every beacon).
	AssocListenInterval  int
	ActualListenInterval int

	// CPUFactor derates software latencies for slower SoCs.
	CPUFactor float64

	// PingIntegerAbove reproduces the Android ping quirk of §3.1: RTTs
	// above this threshold are reported in whole milliseconds, which is
	// how Fig 3 ends up with negative user-kernel overheads.
	PingIntegerAbove time.Duration
}

// The five testbed phones.
func nexus5() Profile {
	return Profile{
		Model: "Google Nexus 5", AndroidVer: "4.4.2", CPUGHz: 2.26, Cores: 4, RAMMB: 2048,
		Chipset: "BCM4339", DriverConfig: driver.Bcmdhd,
		PSMTimeout: 205 * time.Millisecond, AssocListenInterval: 10, ActualListenInterval: 0,
		CPUFactor: 1.0, PingIntegerAbove: 100 * time.Millisecond,
	}
}

func nexus4() Profile {
	return Profile{
		Model: "Google Nexus 4", AndroidVer: "4.4.4", CPUGHz: 1.5, Cores: 4, RAMMB: 2048,
		Chipset: "WCN3660", DriverConfig: driver.Wcnss,
		PSMTimeout: 40 * time.Millisecond, AssocListenInterval: 1, ActualListenInterval: 0,
		CPUFactor: 1.2, PingIntegerAbove: 100 * time.Millisecond,
	}
}

func htcOne() Profile {
	return Profile{
		Model: "HTC One", AndroidVer: "4.2.2", CPUGHz: 1.7, Cores: 4, RAMMB: 2048,
		Chipset: "WCN3680", DriverConfig: driver.Wcnss,
		PSMTimeout: 400 * time.Millisecond, AssocListenInterval: 1, ActualListenInterval: 0,
		CPUFactor: 1.15, PingIntegerAbove: 100 * time.Millisecond,
	}
}

func xperiaJ() Profile {
	return Profile{
		Model: "Sony Xperia J", AndroidVer: "4.0.4", CPUGHz: 1.0, Cores: 1, RAMMB: 512,
		Chipset: "BCM4330", DriverConfig: driver.Bcmdhd,
		PSMTimeout: 210 * time.Millisecond, AssocListenInterval: 10, ActualListenInterval: 0,
		CPUFactor: 2.3, PingIntegerAbove: 100 * time.Millisecond,
	}
}

func samsungGrand() Profile {
	return Profile{
		Model: "Samsung Grand", AndroidVer: "4.1.2", CPUGHz: 1.2, Cores: 2, RAMMB: 1024,
		Chipset: "BCM4329", DriverConfig: driver.Bcmdhd,
		PSMTimeout: 45 * time.Millisecond, AssocListenInterval: 10, ActualListenInterval: 0,
		CPUFactor: 1.8, PingIntegerAbove: 100 * time.Millisecond,
	}
}

// ProfileByName looks up a phone profile; it accepts the full model
// name or any unambiguous suffix ("Google Nexus 5", "Nexus 5",
// "nexus5").
func ProfileByName(name string) (Profile, bool) {
	want := shortName(name)
	if want == "" {
		return Profile{}, false
	}
	for _, p := range Profiles() {
		if p.Model == name || shortName(p.Model) == want {
			return p, true
		}
	}
	for _, p := range Profiles() {
		if strings.HasSuffix(shortName(p.Model), want) {
			return p, true
		}
	}
	return Profile{}, false
}

func shortName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'A' && r <= 'Z':
			out = append(out, r+'a'-'A')
		case r == ' ' || r == '-' || r == '_':
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// Profiles returns the five phones in the paper's Table 1 order.
func Profiles() []Profile {
	return []Profile{nexus5(), nexus4(), htcOne(), xperiaJ(), samsungGrand()}
}

// psmJitter derives the effective-Tip jitter: firmware timers are
// tick-quantised, so the effective timeout wobbles around the nominal
// value. Capped so large timeouts (HTC One's 400 ms) stay sane.
func psmJitter(tip time.Duration) time.Duration {
	j := time.Duration(float64(tip) * 0.35)
	if j > 15*time.Millisecond {
		j = 15 * time.Millisecond
	}
	return j
}

// runtimeOverhead returns the user-space cost distribution per
// operation for the given runtime, before CPU derating.
func runtimeOverhead(r Runtime) simtime.Dist {
	switch r {
	case NativeC:
		// A pre-compiled C binary: tens of microseconds.
		return simtime.Uniform{Lo: 10 * time.Microsecond, Hi: 60 * time.Microsecond}
	default:
		// Dalvik: a few hundred µs typical, with occasional multi-ms
		// GC/JIT stalls — the heavy tail in Fig 8's Java ping curve.
		return simtime.Mixture{
			Weights: []float64{0.96, 0.04},
			Parts: []simtime.Dist{
				simtime.Uniform{Lo: 150 * time.Microsecond, Hi: 700 * time.Microsecond},
				simtime.Uniform{Lo: 2 * time.Millisecond, Hi: 12 * time.Millisecond},
			},
		}
	}
}

// Phone is an assembled simulated smartphone attached to a medium.
type Phone struct {
	Profile Profile
	IPAddr  packet.IPv4Addr
	MACAddr packet.MACAddr

	Drv   *driver.Driver
	STA   *mac.STA
	Stack *kernel.Stack

	sim *simtime.Sim
	tr  *trace.Trace

	runtime  Runtime
	overhead simtime.Dist
}

// PhoneOptions configures phone assembly.
type PhoneOptions struct {
	IP    packet.IPv4Addr
	MAC   packet.MACAddr
	AID   uint16
	BSSID packet.MACAddr
	// PSMEnabled defaults to true (set DisablePSM to turn it off).
	DisablePSM bool
	// BeaconMissProb overrides the default TIM-miss probability (0.17,
	// calibrated to Table 2's Nexus 4 / 60 ms row). Zero keeps the
	// default; pass a negative value for "never miss".
	BeaconMissProb float64
	Runtime        Runtime
	Trace          *trace.Trace
	// ModifyDriver, when set, edits the driver configuration before
	// assembly (experiments use it to sweep idletime, §3.2.1).
	ModifyDriver func(*driver.Config)
}

// NewPhone builds a phone from a profile and attaches it to the medium.
// The caller still needs to associate it with the AP and hand it the
// beacon schedule (testbed.New does both).
func NewPhone(sim *simtime.Sim, prof Profile, med *medium.Medium, fac *packet.Factory, opts PhoneOptions) *Phone {
	switch {
	case opts.BeaconMissProb == 0:
		opts.BeaconMissProb = 0.17
	case opts.BeaconMissProb < 0:
		opts.BeaconMissProb = 0
	}
	drvCfg := prof.DriverConfig()
	if opts.ModifyDriver != nil {
		opts.ModifyDriver(&drvCfg)
	}
	drv := driver.New(sim, drvCfg, opts.Trace)

	staCfg := mac.STAConfig{
		MAC:                 opts.MAC,
		IP:                  opts.IP,
		BSSID:               opts.BSSID,
		AID:                 opts.AID,
		PSMEnabled:          !opts.DisablePSM,
		PSMTimeout:          prof.PSMTimeout,
		PSMTimeoutJitter:    psmJitter(prof.PSMTimeout),
		ListenInterval:      listenEvery(prof.ActualListenInterval),
		AssocListenInterval: prof.AssocListenInterval,
		BeaconMissProb:      opts.BeaconMissProb,
		BeaconGuard:         time.Millisecond,
	}
	sta := mac.NewSTA(sim, med, staCfg, fac, opts.Trace, drv.HandleFrameFromMAC)
	drv.SetSTA(sta)

	kcfg := kernel.PhoneConfig(opts.IP)
	kcfg.SendLatency = simtime.Scaled{D: kcfg.SendLatency, Factor: prof.CPUFactor}
	kcfg.RecvLatency = simtime.Scaled{D: kcfg.RecvLatency, Factor: prof.CPUFactor}
	stack := kernel.New(sim, kcfg, kernel.DeviceFunc(func(p *packet.Packet) {
		drv.Send(p, nil)
	}), fac, opts.Trace)
	drv.SetRecvUp(stack.DeliverFromDevice)

	return &Phone{
		Profile:  prof,
		IPAddr:   opts.IP,
		MACAddr:  opts.MAC,
		Drv:      drv,
		STA:      sta,
		Stack:    stack,
		sim:      sim,
		tr:       opts.Trace,
		runtime:  opts.Runtime,
		overhead: simtime.Scaled{D: runtimeOverhead(opts.Runtime), Factor: prof.CPUFactor},
	}
}

// listenEvery converts the wire-format listen interval (0 ⇒ every
// beacon) into a wake cadence.
func listenEvery(wire int) int {
	if wire <= 0 {
		return 1
	}
	return wire
}

// Runtime returns the phone's app runtime.
func (p *Phone) Runtime() Runtime { return p.runtime }

// SetRuntime switches the app runtime (native C vs Dalvik), refreshing
// the overhead model.
func (p *Phone) SetRuntime(r Runtime) {
	p.runtime = r
	p.overhead = simtime.Scaled{D: runtimeOverhead(r), Factor: p.Profile.CPUFactor}
}

// AppDo runs fn after one user-space runtime overhead sample; tools use
// it to model the path from "app decides to send" to the send syscall.
func (p *Phone) AppDo(fn func()) {
	p.sim.Schedule(p.overhead.Sample(p.sim), fn)
}

// AppDeliver runs fn after one runtime overhead sample, modelling the
// path from socket readiness to the app observing the data.
func (p *Phone) AppDeliver(fn func()) {
	p.sim.Schedule(p.overhead.Sample(p.sim), fn)
}

// AppDoAs is AppDo with an explicit runtime, letting a Dalvik tool (Java
// ping) and a native tool (ping, AcuteMon's MT) coexist on one phone.
func (p *Phone) AppDoAs(r Runtime, fn func()) {
	d := simtime.Scaled{D: runtimeOverhead(r), Factor: p.Profile.CPUFactor}
	p.sim.Schedule(d.Sample(p.sim), fn)
}

// String implements fmt.Stringer.
func (p *Phone) String() string {
	return fmt.Sprintf("%s (%s, %s)", p.Profile.Model, p.Profile.Chipset, p.runtime)
}
