// Package report renders experiment results as aligned text tables and
// simple ASCII charts. The bench harness uses it to print each of the
// paper's tables and figures in a form directly comparable with the
// published ones.
package report

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/stats"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted cells (each arg via %v).
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = fmt.Sprintf("%.3f", stats.Millis(v))
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(row...)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len([]rune(c))))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// MeanCI formats "mean ±ci" in milliseconds, the cell format of the
// paper's Tables 2 and 5.
func MeanCI(s stats.Sample) string {
	return fmt.Sprintf("%.2f ±%.2f", stats.Millis(s.Mean()), stats.Millis(s.CI95()))
}

// MinMeanMax formats "min / mean / max" in milliseconds (Table 3 cells).
func MinMeanMax(s stats.Sample) string {
	return fmt.Sprintf("%.3f / %.3f / %.3f",
		stats.Millis(s.Min()), stats.Millis(s.Mean()), stats.Millis(s.Max()))
}

// RenderBox draws one horizontal ASCII box plot scaled to [lo, hi] over
// width characters.
func RenderBox(label string, b stats.Boxplot, lo, hi time.Duration, width int) string {
	if width < 20 {
		width = 20
	}
	span := float64(hi - lo)
	if span <= 0 {
		span = 1
	}
	pos := func(d time.Duration) int {
		p := int(float64(d-lo) / span * float64(width-1))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	line := make([]rune, width)
	for i := range line {
		line[i] = ' '
	}
	wl, q1, med, q3, wh := pos(b.WhiskerLo), pos(b.Q1), pos(b.Median), pos(b.Q3), pos(b.WhiskerHi)
	for i := wl; i <= wh && i < width; i++ {
		line[i] = '-'
	}
	for i := q1; i <= q3 && i < width; i++ {
		line[i] = '='
	}
	line[wl] = '|'
	line[wh] = '|'
	line[med] = 'M'
	for _, o := range b.Outliers {
		line[pos(o)] = 'o'
	}
	return fmt.Sprintf("%-16s [%s]  med=%.2fms q1=%.2f q3=%.2f n=%d",
		label, string(line), stats.Millis(b.Median), stats.Millis(b.Q1), stats.Millis(b.Q3), b.N)
}

// RenderCDF prints an ECDF as rows of (ms, probability) pairs at the
// given probability steps, plus a crude curve.
func RenderCDF(label string, e *stats.ECDF, width int) string {
	if e.N() == 0 {
		return label + ": (no samples)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d)\n", label, e.N())
	for _, q := range []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99} {
		fmt.Fprintf(&b, "  p%02.0f = %8.2f ms\n", q*100, stats.Millis(e.Quantile(q)))
	}
	return b.String()
}

// CDFGrid renders several ECDFs side by side: one row per quantile, one
// column per series — the textual analogue of the paper's Figure 8.
func CDFGrid(title string, labels []string, cdfs []*stats.ECDF) string {
	t := NewTable(title, append([]string{"quantile"}, labels...)...)
	for _, q := range []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99} {
		cells := []string{fmt.Sprintf("p%02.0f", q*100)}
		for _, e := range cdfs {
			if e == nil || e.N() == 0 {
				cells = append(cells, "-")
				continue
			}
			cells = append(cells, fmt.Sprintf("%.2f ms", stats.Millis(e.Quantile(q))))
		}
		t.AddRow(cells...)
	}
	return t.String()
}
