package cellular

import (
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/simtime"
	"repro/internal/stats"
)

func TestModemStartsIdle(t *testing.T) {
	sim := simtime.New(1)
	m := NewModem(sim, UMTS(), nil)
	if m.State() != Idle {
		t.Fatal("modem should start IDLE")
	}
}

func TestPromotionOnSendAndDemotionTimers(t *testing.T) {
	tb := NewTestbed(TestbedConfig{Seed: 1, Radio: UMTS(), CoreRTT: 40 * time.Millisecond})
	m := tb.Modem
	tb.Phone.SendEcho(tb.ServerIP(), 1, 1, 32)
	// Promotion takes ~2s; until then the modem is promoting from IDLE.
	tb.Sim.RunFor(100 * time.Millisecond)
	if m.State() == DCH {
		t.Fatal("modem reached DCH instantly; promotion cost missing")
	}
	tb.Sim.RunFor(3 * time.Second)
	if m.State() != DCH {
		t.Fatalf("state = %v after promotion, want DCH", m.State())
	}
	// T1 (5s) then demotes to FACH, T2 (12s) to IDLE.
	tb.Sim.RunFor(6 * time.Second)
	if m.State() != FACH {
		t.Fatalf("state = %v after T1, want FACH", m.State())
	}
	tb.Sim.RunFor(13 * time.Second)
	if m.State() != Idle {
		t.Fatalf("state = %v after T2, want IDLE", m.State())
	}
	if m.Stats.Promotions != 1 || m.Stats.Demotions != 2 {
		t.Fatalf("stats: %+v", m.Stats)
	}
}

func TestFastPingsStayInDCH(t *testing.T) {
	tb := NewTestbed(TestbedConfig{Seed: 2, Radio: UMTS(), CoreRTT: 40 * time.Millisecond})
	res := tb.Ping(30, 500*time.Millisecond) // well under T1=5s
	if res.Lost > 1 {
		t.Fatalf("lost %d probes", res.Lost)
	}
	// The probes issued before the IDLE→DCH promotion (~2s) completes
	// all queue and flush together: the earliest-sent one shows the full
	// promotion in its RTT.
	if max := res.RTTs.Max(); max < 1800*time.Millisecond {
		t.Fatalf("max RTT = %v, want promotion-inflated (≥1.8s)", max)
	}
	// Once in DCH the campaign is clean: the median over all probes is
	// the pure path RTT (CoreRTT 40ms + 2×DCH latency + kernel costs).
	med := stats.Millis(res.RTTs.Median())
	if med < 80 || med > 150 {
		t.Fatalf("median = %.1fms", med)
	}
	if tb.Modem.Stats.Promotions != 1 {
		t.Fatalf("promotions = %d, want 1", tb.Modem.Stats.Promotions)
	}
}

func TestSlowPingsPayPromotionEveryTime(t *testing.T) {
	tb := NewTestbed(TestbedConfig{Seed: 3, Radio: UMTS(), CoreRTT: 40 * time.Millisecond})
	res := tb.Ping(8, 20*time.Second) // beyond T2: modem is IDLE each time
	if res.Lost != 0 {
		t.Fatalf("lost %d", res.Lost)
	}
	med := stats.Millis(res.RTTs.Median())
	if med < 1800 {
		t.Fatalf("median = %.0fms, want promotion-dominated (≥1.8s)", med)
	}
	if tb.Modem.Stats.Promotions < 8 {
		t.Fatalf("promotions = %d, want one per probe", tb.Modem.Stats.Promotions)
	}
}

func TestIntermediateIntervalHitsFACH(t *testing.T) {
	tb := NewTestbed(TestbedConfig{Seed: 4, Radio: UMTS(), CoreRTT: 40 * time.Millisecond})
	res := tb.Ping(8, 7*time.Second) // between T1 and T1+T2: FACH→DCH each time
	med := stats.Millis(res.RTTs[1:].Median())
	// FACH→DCH ~0.5-0.9s promotion.
	if med < 500 || med > 1300 {
		t.Fatalf("median = %.0fms, want FACH-promotion regime", med)
	}
}

func TestAcuteMonOverCellular(t *testing.T) {
	// The §4 extension claim: background traffic pins the modem in DCH,
	// so probes see only the true path RTT.
	tb := NewTestbed(TestbedConfig{Seed: 5, Radio: UMTS(), CoreRTT: 40 * time.Millisecond})
	tb.Sim.RunFor(30 * time.Second) // modem settles into IDLE
	res := tb.RunAcuteMon(30, 2500*time.Millisecond /* dpre > IdleToDCH */, time.Second, 0)
	if res.Lost > 2 {
		t.Fatalf("lost %d probes", res.Lost)
	}
	med := stats.Millis(res.RTTs.Median())
	if med < 80 || med > 130 {
		t.Fatalf("AcuteMon cellular median = %.1fms, want clean DCH RTT", med)
	}
	// No probe should pay a promotion.
	if max := stats.Millis(res.RTTs.Max()); max > 300 {
		t.Fatalf("max RTT = %.0fms: some probe hit a promotion", max)
	}
	if res.BackgroundSent == 0 {
		t.Fatal("no background traffic sent")
	}
}

func TestLTEPromotionsAreCheaper(t *testing.T) {
	umts := NewTestbed(TestbedConfig{Seed: 6, Radio: UMTS(), CoreRTT: 40 * time.Millisecond})
	lte := NewTestbed(TestbedConfig{Seed: 6, Radio: LTE(), CoreRTT: 40 * time.Millisecond})
	ru := umts.Ping(3, 30*time.Second)
	rl := lte.Ping(3, 90*time.Second) // LTE T2=60s: still IDLE each probe
	if rl.RTTs.Median() >= ru.RTTs.Median() {
		t.Fatalf("LTE promotion RTT (%v) should undercut UMTS (%v)",
			rl.RTTs.Median(), ru.RTTs.Median())
	}
}

func TestDownlinkPagingFromIdle(t *testing.T) {
	tb := NewTestbed(TestbedConfig{Seed: 7, Radio: UMTS(), CoreRTT: 40 * time.Millisecond})
	// Server-initiated traffic to an IDLE modem pays paging + promotion
	// latency before the phone sees it.
	var at time.Duration
	sink, err := tb.Phone.OpenUDP(7777)
	if err != nil {
		t.Fatal(err)
	}
	sink.SetRecv(func(payload []byte, from packet.IPv4Addr, fp uint16, p *packet.Packet, now time.Duration) {
		at = now
	})
	srvSock, err := tb.Server.OpenUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	start := tb.Sim.Now()
	srvSock.SendTo(packet.IP(10, 20, 0, 2), 7777, []byte("wake up"), 0)
	tb.Sim.RunFor(5 * time.Second)
	if at == 0 {
		t.Fatal("downlink packet never delivered")
	}
	oneWay := at - start
	// CoreRTT/2 (20ms) + paging (150-400ms) + DCH latency.
	if oneWay < 150*time.Millisecond {
		t.Fatalf("one-way = %v, want paging-inflated (≥150ms)", oneWay)
	}
	if tb.Modem.State() != DCH {
		t.Fatalf("modem state = %v after paging, want DCH", tb.Modem.State())
	}
}

func TestDeterministicCellularRuns(t *testing.T) {
	run := func() time.Duration {
		tb := NewTestbed(TestbedConfig{Seed: 8, Radio: UMTS(), CoreRTT: 30 * time.Millisecond})
		res := tb.Ping(5, time.Second)
		return res.RTTs.Mean()
	}
	if run() != run() {
		t.Fatal("cellular runs diverged")
	}
}
