package ingest

import (
	"net"
	"testing"
	"time"
)

// tcpPost writes one binary frame on c and returns the status byte.
func tcpPost(t *testing.T, c net.Conn, batch []Summary) byte {
	t.Helper()
	frame, err := AppendBinaryBatch(nil, batch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(frame); err != nil {
		t.Fatal(err)
	}
	var status [1]byte
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(status[:]); err != nil {
		t.Fatal(err)
	}
	return status[0]
}

// TestTCPWire drives the raw binary listener: framed batches on one
// long-lived connection, one status byte per frame, folds landing in
// the same store the HTTP wire feeds.
func TestTCPWire(t *testing.T) {
	s := startTestServer(t, Config{Window: -1, TCPAddr: "127.0.0.1:0"})
	if s.TCPAddr() == "" {
		t.Fatal("TCP listener not bound")
	}
	c, err := net.Dial("tcp", s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	total := 0
	for f := 0; f < 5; f++ {
		batch := make([]Summary, 8)
		for i := range batch {
			batch[i] = Summary{Device: "Google Nexus 5", TimeMS: 1, Sent: 1,
				RTTs: []int64{int64(30 * time.Millisecond)}}
		}
		if got := tcpPost(t, c, batch); got != tcpStatusAccepted {
			t.Fatalf("frame %d: status %d, want accepted", f, got)
		}
		total += len(batch)
	}
	waitFolded(t, s, int64(total))
	cells := s.Store().Snapshot()
	if len(cells) != 1 || cells[0].Sessions != int64(total) {
		t.Fatalf("store after TCP ingest: %+v", cells)
	}

	// A torn frame answers bad and drops the connection.
	bad, err := net.Dial("tcp", s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	if _, err := bad.Write([]byte("GARBAGE FRAME\n")); err != nil {
		t.Fatal(err)
	}
	var status [1]byte
	bad.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := bad.Read(status[:]); err != nil || status[0] != tcpStatusBad {
		t.Fatalf("garbage frame: status %d err %v, want bad", status[0], err)
	}
	if _, err := bad.Read(status[:]); err == nil {
		t.Fatal("connection survived a bad frame")
	}
	if s.metrics.BadBatches.Load() == 0 {
		t.Fatal("bad frame not counted")
	}
}
