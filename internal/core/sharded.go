package core

import (
	"repro/internal/puncture"
	"repro/internal/testbed"
)

// ShardedRegistry is a concurrency-safe calibration database for
// fleet-scale campaigns: many workers measuring different device models
// concurrently look parameters up and record fresh calibrations without
// funnelling through one global lock.
//
// Deprecated: ShardedRegistry is now a thin view over puncture.Store —
// the lock-striped device-knowledge engine that fuses these calibrated
// timers with the learned per-model overhead profiles the ingest
// service serves. New code should hold the store directly; the view
// remains so existing campaign and CLI wiring keeps compiling.
type ShardedRegistry struct {
	store *puncture.Store
}

// DefaultRegistryShards mirrors the knowledge store's stripe default.
const DefaultRegistryShards = puncture.DefaultShards

// NewShardedRegistry builds a registry view over a fresh store (values
// < 1 fall back to the default stripe count).
func NewShardedRegistry(shards int) *ShardedRegistry {
	return &ShardedRegistry{store: puncture.NewStore(shards)}
}

// RegistryView wraps an existing device-knowledge store in the legacy
// registry interface, so layers still speaking RegistryEntry share one
// store with layers speaking DeviceProfile.
func RegistryView(st *puncture.Store) *ShardedRegistry {
	if st == nil {
		return nil
	}
	return &ShardedRegistry{store: st}
}

// Store exposes the backing device-knowledge store.
func (s *ShardedRegistry) Store() *puncture.Store { return s.store }

// Lookup returns the entry for the model, if present.
func (s *ShardedRegistry) Lookup(model string) (RegistryEntry, bool) {
	return s.store.Calibration(model)
}

// Record validates and stores an entry, replacing any previous one for
// the same model.
func (s *ShardedRegistry) Record(e RegistryEntry) error {
	return s.store.RecordCalibration(e)
}

// ConfigFor returns base with the model's stored dpre/db applied, and
// whether an entry was found.
func (s *ShardedRegistry) ConfigFor(model string, base Config) (Config, bool) {
	e, ok := s.store.Calibration(model)
	if !ok {
		return base, false
	}
	base.WarmupDelay = e.Warmup
	base.BackgroundInterval = e.Interval
	return base, true
}

// Len returns the number of calibrated models.
func (s *ShardedRegistry) Len() int { return s.store.CalibratedLen() }

// Models lists all calibrated models, sorted.
func (s *ShardedRegistry) Models() []string { return s.store.CalibratedModels() }

// Snapshot copies the calibrations into a plain Registry, suitable for
// Save or read-only inspection. Consistent per store stripe, which is
// the right trade for a progress report while a campaign still writes.
func (s *ShardedRegistry) Snapshot() *Registry {
	out := NewRegistry()
	for _, m := range s.store.CalibratedModels() {
		if e, ok := s.store.Calibration(m); ok {
			// Entries came from one validated store; re-validation
			// cannot fail.
			out.Put(e)
		}
	}
	return out
}

// Load bulk-inserts every entry of a plain registry (e.g. parsed from a
// saved JSON database).
func (s *ShardedRegistry) Load(r *Registry) error {
	for _, e := range r.Entries() {
		if err := s.store.RecordCalibration(e); err != nil {
			return err
		}
	}
	return nil
}

// CalibrateInto runs the calibration procedure on the testbed's phone
// and records the result. The simulation runs outside any lock; only
// the final record synchronizes.
func (s *ShardedRegistry) CalibrateInto(tb *testbed.Testbed, opts CalibrateOptions) (RegistryEntry, error) {
	return calibrateInto(s.store, tb, opts)
}
