// Package kernel implements a miniature IPv4 network stack used by every
// host in the simulated testbed: the phone (above the WNIC driver), the
// measurement server, the warm-up sink, and the load generator/server.
//
// It provides exactly what the paper's experiments exercise — ICMP echo,
// UDP datagrams with TTL control (AcuteMon's warm-up packets), and
// enough TCP for SYN/SYN-ACK connect probes and single HTTP
// request/response exchanges — plus a bpf tap that timestamps packets at
// dev_queue_xmit and netif_rx, the way the authors run tcpdump on the
// phone to obtain the kernel-level RTT dk (§2.1).
package kernel

import (
	"fmt"
	"time"

	"repro/internal/packet"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// Device is the network interface below the stack. The phone's WNIC
// driver and the wired NIC adapters implement it.
type Device interface {
	Send(ip *packet.Packet)
}

// DeviceFunc adapts a function to the Device interface.
type DeviceFunc func(*packet.Packet)

// Send implements Device.
func (f DeviceFunc) Send(p *packet.Packet) { f(p) }

// Config parameterises a stack instance.
type Config struct {
	IP packet.IPv4Addr
	// SendLatency spans the send syscall to dev_queue_xmit (where bpf
	// stamps outgoing packets).
	SendLatency simtime.Dist
	// RecvLatency spans netif_rx (bpf's incoming stamp) to the receiving
	// socket returning to the application.
	RecvLatency simtime.Dist
	// TTL is the default TTL for generated packets.
	TTL byte
	// EchoLatency is the ICMP echo turn-around cost (the paper cites
	// microsecond-level server processing [24]).
	EchoLatency simtime.Dist
}

// PhoneConfig returns kernel latencies typical of the Android phones.
func PhoneConfig(ip packet.IPv4Addr) Config {
	return Config{
		IP:          ip,
		SendLatency: simtime.Uniform{Lo: 30 * time.Microsecond, Hi: 120 * time.Microsecond},
		RecvLatency: simtime.Uniform{Lo: 40 * time.Microsecond, Hi: 160 * time.Microsecond},
		TTL:         64,
		EchoLatency: simtime.Uniform{Lo: 20 * time.Microsecond, Hi: 60 * time.Microsecond},
	}
}

// ServerConfig returns kernel latencies for the wired desktop hosts.
func ServerConfig(ip packet.IPv4Addr) Config {
	return Config{
		IP:          ip,
		SendLatency: simtime.Uniform{Lo: 5 * time.Microsecond, Hi: 25 * time.Microsecond},
		RecvLatency: simtime.Uniform{Lo: 5 * time.Microsecond, Hi: 30 * time.Microsecond},
		TTL:         64,
		EchoLatency: simtime.Uniform{Lo: 5 * time.Microsecond, Hi: 20 * time.Microsecond},
	}
}

// Capture is one bpf record.
type Capture struct {
	PktID    uint64
	At       time.Duration
	Outgoing bool
	Pkt      *packet.Packet
}

// BPF is the stack's capture tap (tcpdump).
type BPF struct {
	enabled bool
	records []Capture
	byID    map[uint64]time.Duration
}

// Enable starts capturing.
func (b *BPF) Enable() { b.enabled = true }

// Records returns all captures in order.
func (b *BPF) Records() []Capture { return b.records }

// TimeOf returns the capture time of a packet ID.
func (b *BPF) TimeOf(id uint64) (time.Duration, bool) {
	t, ok := b.byID[id]
	return t, ok
}

// Reset drops all captures.
func (b *BPF) Reset() { b.records = nil; b.byID = map[uint64]time.Duration{} }

func (b *BPF) capture(p *packet.Packet, at time.Duration, out bool) {
	if !b.enabled {
		return
	}
	if b.byID == nil {
		b.byID = map[uint64]time.Duration{}
	}
	b.records = append(b.records, Capture{PktID: p.ID, At: at, Outgoing: out, Pkt: p.Clone()})
	if _, dup := b.byID[p.ID]; !dup {
		b.byID[p.ID] = at
	}
}

// ICMPHandler receives echo replies and errors demuxed by ICMP ID.
type ICMPHandler func(ic *packet.ICMP, p *packet.Packet, at time.Duration)

type tcpKey struct {
	localPort  uint16
	remoteIP   packet.IPv4Addr
	remotePort uint16
}

// Stack is one host's network stack.
type Stack struct {
	sim *simtime.Sim
	cfg Config
	dev Device
	fac *packet.Factory
	tr  *trace.Trace

	bpf       BPF
	icmp      map[uint16]ICMPHandler
	udp       map[uint16]*UDPSocket
	tcp       map[tcpKey]*TCPConn
	listeners map[uint16]*Listener

	ephemeral uint16
	ipID      uint16

	// Stats
	SentPackets, RecvPackets, DroppedNoDemux uint64
}

// New creates a stack bound to the device. tr may be nil. The packet
// factory is shared across the whole simulation so packet IDs stay
// unique; pass the testbed's factory.
func New(sim *simtime.Sim, cfg Config, dev Device, fac *packet.Factory, tr *trace.Trace) *Stack {
	if cfg.TTL == 0 {
		cfg.TTL = 64
	}
	return &Stack{
		sim:       sim,
		cfg:       cfg,
		dev:       dev,
		fac:       fac,
		tr:        tr,
		icmp:      make(map[uint16]ICMPHandler),
		udp:       make(map[uint16]*UDPSocket),
		tcp:       make(map[tcpKey]*TCPConn),
		listeners: make(map[uint16]*Listener),
		ephemeral: 40000,
	}
}

// IP returns the stack's address.
func (s *Stack) IP() packet.IPv4Addr { return s.cfg.IP }

// BPF returns the capture tap.
func (s *Stack) BPF() *BPF { return &s.bpf }

// Factory returns the shared packet factory.
func (s *Stack) Factory() *packet.Factory { return s.fac }

// Sim returns the simulation clock driving this stack.
func (s *Stack) Sim() *simtime.Sim { return s.sim }

func (s *Stack) sample(d simtime.Dist) time.Duration {
	if d == nil {
		return 0
	}
	return d.Sample(s.sim)
}

func (s *Stack) nextIPID() uint16 {
	s.ipID++
	return s.ipID
}

// sendIP pushes a fully-formed IP packet down: syscall latency, bpf
// stamp at dev_queue_xmit, then the device.
func (s *Stack) sendIP(p *packet.Packet) {
	s.sim.Schedule(s.sample(s.cfg.SendLatency), func() {
		now := s.sim.Now()
		p.Ledger.Set(packet.PointKernelSend, now)
		s.bpf.capture(p, now, true)
		s.SentPackets++
		s.tr.Addf(now, "kernel", "dev_queue_xmit", "pkt=%d", p.ID)
		s.dev.Send(p)
	})
}

// DeliverFromDevice accepts an inbound IP packet from the device layer
// (netif_rx): bpf stamps it immediately, socket demux happens after the
// kernel receive latency.
func (s *Stack) DeliverFromDevice(p *packet.Packet) {
	now := s.sim.Now()
	p.Ledger.Set(packet.PointKernelRecv, now)
	s.bpf.capture(p, now, false)
	s.RecvPackets++
	s.tr.Addf(now, "kernel", "netif_rx", "pkt=%d", p.ID)
	s.sim.Schedule(s.sample(s.cfg.RecvLatency), func() { s.demux(p) })
}

func (s *Stack) demux(p *packet.Packet) {
	ip := p.IPv4()
	if ip == nil || ip.Dst != s.cfg.IP {
		s.DroppedNoDemux++
		return
	}
	switch ip.Protocol {
	case packet.ProtoICMP:
		s.demuxICMP(p)
	case packet.ProtoUDP:
		s.demuxUDP(p)
	case packet.ProtoTCP:
		s.demuxTCP(p)
	default:
		s.DroppedNoDemux++
	}
}

// --- ICMP ---

// SendEcho transmits an ICMP echo request.
func (s *Stack) SendEcho(dst packet.IPv4Addr, id, seq uint16, payloadLen int) *packet.Packet {
	p := s.fac.NewPacket(
		&packet.IPv4{TTL: s.cfg.TTL, Protocol: packet.ProtoICMP, Src: s.cfg.IP, Dst: dst, ID: s.nextIPID()},
		&packet.ICMP{Type: packet.ICMPEchoRequest, ID: id, Seq: seq},
		&packet.Payload{Data: make([]byte, payloadLen)},
	)
	p.Ledger.Set(packet.PointUserSend, s.sim.Now())
	s.sendIP(p)
	return p
}

// OnICMP registers a handler for echo replies (and ICMP errors) with the
// given echo identifier.
func (s *Stack) OnICMP(id uint16, fn ICMPHandler) { s.icmp[id] = fn }

// CloseICMP removes an echo handler.
func (s *Stack) CloseICMP(id uint16) { delete(s.icmp, id) }

func (s *Stack) demuxICMP(p *packet.Packet) {
	ic := p.ICMP()
	if ic == nil {
		s.DroppedNoDemux++
		return
	}
	if ic.IsEchoRequest() {
		// Reply in kernel space, as real hosts do.
		s.sim.Schedule(s.sample(s.cfg.EchoLatency), func() {
			reply := s.fac.NewPacket(
				&packet.IPv4{TTL: s.cfg.TTL, Protocol: packet.ProtoICMP, Src: s.cfg.IP, Dst: p.IPv4().Src, ID: s.nextIPID()},
				&packet.ICMP{Type: packet.ICMPEchoReply, ID: ic.ID, Seq: ic.Seq},
				&packet.Payload{Data: append([]byte(nil), p.Payload()...)},
			)
			s.sendIP(reply)
		})
		return
	}
	if fn, ok := s.icmp[ic.ID]; ok {
		fn(ic, p, s.sim.Now())
		return
	}
	s.DroppedNoDemux++
}

// --- UDP ---

// UDPSocket is a bound UDP endpoint.
type UDPSocket struct {
	stack *Stack
	port  uint16
	// onRecv receives (payload, source ip/port, packet, arrival time).
	onRecv func(payload []byte, from packet.IPv4Addr, fromPort uint16, p *packet.Packet, at time.Duration)
}

// OpenUDP binds a UDP socket; port 0 picks an ephemeral port.
func (s *Stack) OpenUDP(port uint16) (*UDPSocket, error) {
	if port == 0 {
		port = s.nextEphemeral()
	}
	if _, busy := s.udp[port]; busy {
		return nil, fmt.Errorf("kernel: UDP port %d in use", port)
	}
	sock := &UDPSocket{stack: s, port: port}
	s.udp[port] = sock
	return sock, nil
}

func (s *Stack) nextEphemeral() uint16 {
	for {
		s.ephemeral++
		if s.ephemeral < 40000 {
			s.ephemeral = 40000
		}
		if _, busy := s.udp[s.ephemeral]; busy {
			continue
		}
		return s.ephemeral
	}
}

// Port returns the bound port.
func (u *UDPSocket) Port() uint16 { return u.port }

// SetRecv installs the receive callback.
func (u *UDPSocket) SetRecv(fn func(payload []byte, from packet.IPv4Addr, fromPort uint16, p *packet.Packet, at time.Duration)) {
	u.onRecv = fn
}

// SendTo emits a datagram. ttl=0 uses the stack default; AcuteMon's
// warm-up and background packets pass ttl=1 so the first-hop router
// drops them (§4.1).
func (u *UDPSocket) SendTo(dst packet.IPv4Addr, dstPort uint16, payload []byte, ttl byte) *packet.Packet {
	if ttl == 0 {
		ttl = u.stack.cfg.TTL
	}
	p := u.stack.fac.NewPacket(
		&packet.IPv4{TTL: ttl, Protocol: packet.ProtoUDP, Src: u.stack.cfg.IP, Dst: dst, ID: u.stack.nextIPID()},
		&packet.UDP{SrcPort: u.port, DstPort: dstPort},
		&packet.Payload{Data: payload},
	)
	p.Ledger.Set(packet.PointUserSend, u.stack.sim.Now())
	u.stack.sendIP(p)
	return p
}

// Close unbinds the socket.
func (u *UDPSocket) Close() { delete(u.stack.udp, u.port) }

func (s *Stack) demuxUDP(p *packet.Packet) {
	udp := p.UDP()
	if udp == nil {
		s.DroppedNoDemux++
		return
	}
	sock, ok := s.udp[udp.DstPort]
	if !ok || sock.onRecv == nil {
		s.DroppedNoDemux++
		return
	}
	sock.onRecv(p.Payload(), p.IPv4().Src, udp.SrcPort, p, s.sim.Now())
}
