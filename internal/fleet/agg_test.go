package fleet

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/stats"
)

func approxEq(a, b, rel float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= rel*scale
}

// TestMomentsMergeMatchesSinglePass is the aggregator-correctness
// contract: folding a sample in shards and merging must agree with one
// sequential pass over the same values.
func TestMomentsMergeMatchesSinglePass(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	values := make([]float64, 10_000)
	for i := range values {
		values[i] = 30e6 + rng.NormFloat64()*5e6 // ~30ms ± 5ms in ns
	}

	var single Moments
	for _, v := range values {
		single.Add(v)
	}

	for _, shards := range []int{2, 3, 7, 16} {
		parts := make([]Moments, shards)
		for i, v := range values {
			parts[i%shards].Add(v)
		}
		var merged Moments
		for _, p := range parts {
			merged.Merge(p)
		}
		if merged.N != single.N {
			t.Fatalf("shards=%d: N %d vs %d", shards, merged.N, single.N)
		}
		if !approxEq(merged.Mean, single.Mean, 1e-9) {
			t.Errorf("shards=%d: mean %v vs %v", shards, merged.Mean, single.Mean)
		}
		if !approxEq(merged.Variance(), single.Variance(), 1e-6) {
			t.Errorf("shards=%d: variance %v vs %v", shards, merged.Variance(), single.Variance())
		}
		if merged.MinV != single.MinV || merged.MaxV != single.MaxV {
			t.Errorf("shards=%d: min/max %v/%v vs %v/%v", shards, merged.MinV, merged.MaxV, single.MinV, single.MaxV)
		}
	}
}

func TestHistMergeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	single := newDuHist()
	parts := []*Hist{newDuHist(), newDuHist(), newDuHist()}
	for i := 0; i < 50_000; i++ {
		d := time.Duration(rng.Int63n(int64(600 * time.Millisecond)))
		if i%100 == 0 {
			d = -time.Millisecond // exercise Under
		}
		single.Add(d)
		parts[i%3].Add(d)
	}
	merged := newDuHist()
	for _, p := range parts {
		if err := merged.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	if merged.Under != single.Under || merged.Over != single.Over {
		t.Fatalf("under/over: %d/%d vs %d/%d", merged.Under, merged.Over, single.Under, single.Over)
	}
	for i := range merged.Counts {
		if merged.Counts[i] != single.Counts[i] {
			t.Fatalf("bin %d: %d vs %d", i, merged.Counts[i], single.Counts[i])
		}
	}
	if merged.N() != single.N() {
		t.Fatalf("N: %d vs %d", merged.N(), single.N())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if merged.Quantile(q) != single.Quantile(q) {
			t.Errorf("q=%.2f: %v vs %v", q, merged.Quantile(q), single.Quantile(q))
		}
	}
	if err := merged.Merge(NewHist(0, time.Second, 10)); err == nil {
		t.Error("geometry mismatch accepted")
	}
}

func TestHistQuantileAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	h := newDuHist()
	var s stats.Sample
	for i := 0; i < 20_000; i++ {
		d := time.Duration(20*time.Millisecond) + time.Duration(rng.Int63n(int64(80*time.Millisecond)))
		h.Add(d)
		s = append(s, d)
	}
	for _, q := range []float64{0.25, 0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		want := s.Percentile(q * 100)
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		// One histogram bin (0.5ms) of slack.
		if diff > time.Millisecond {
			t.Errorf("q=%.2f: hist %v vs exact %v", q, got, want)
		}
	}
}

// TestGroupAggregateMergeMatchesSinglePass folds synthetic session
// results both sequentially and sharded-then-merged, the exact shape of
// the per-worker aggregation in Run.
func TestGroupAggregateMergeMatchesSinglePass(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	type sess struct {
		r SessionResult
		s stats.Sample
	}
	var sessions []sess
	for i := 0; i < 200; i++ {
		var s stats.Sample
		for j := 0; j < 50; j++ {
			s = append(s, time.Duration(30e6+rng.NormFloat64()*4e6))
		}
		sessions = append(sessions, sess{
			r: SessionResult{
				Sent: 50, Lost: rng.Intn(3), BackgroundSent: 40,
				Inflation:    1 + rng.Float64(),
				LayersOK:     true,
				UserOverhead: time.Duration(rng.Int63n(int64(time.Millisecond))),
				SDIOOverhead: time.Duration(rng.Int63n(int64(2 * time.Millisecond))),
				PSMInflation: time.Duration(rng.Int63n(int64(5 * time.Millisecond))),
				PSMActive:    i%3 == 0,
			},
			s: s,
		})
	}

	single := newGroupAggregate("g")
	for i := range sessions {
		single.fold(&sessions[i].r, sessions[i].s)
	}

	const workers = 6
	parts := make([]*GroupAggregate, workers)
	for w := range parts {
		parts[w] = newGroupAggregate("g")
	}
	for i := range sessions {
		parts[i%workers].fold(&sessions[i].r, sessions[i].s)
	}
	merged := newGroupAggregate("g")
	for _, p := range parts {
		if err := merged.Merge(p); err != nil {
			t.Fatal(err)
		}
	}

	if merged.Sessions != single.Sessions || merged.ProbesSent != single.ProbesSent ||
		merged.ProbesLost != single.ProbesLost || merged.BackgroundSent != single.BackgroundSent ||
		merged.PSMActiveSessions != single.PSMActiveSessions {
		t.Fatalf("counts diverge: %+v vs %+v", merged, single)
	}
	if merged.Du.N != single.Du.N || !approxEq(merged.Du.Mean, single.Du.Mean, 1e-9) ||
		!approxEq(merged.Du.Variance(), single.Du.Variance(), 1e-6) {
		t.Errorf("Du moments diverge: %+v vs %+v", merged.Du, single.Du)
	}
	for i := range merged.DuHist.Counts {
		if merged.DuHist.Counts[i] != single.DuHist.Counts[i] {
			t.Fatalf("hist bin %d: %d vs %d", i, merged.DuHist.Counts[i], single.DuHist.Counts[i])
		}
	}
	for _, pair := range [][2]Moments{
		{merged.Inflation, single.Inflation},
		{merged.UserOverhead, single.UserOverhead},
		{merged.SDIOOverhead, single.SDIOOverhead},
		{merged.PSMInflation, single.PSMInflation},
	} {
		if pair[0].N != pair[1].N || !approxEq(pair[0].Mean, pair[1].Mean, 1e-9) {
			t.Errorf("moments diverge: %+v vs %+v", pair[0], pair[1])
		}
	}
}

// TestGroupAggregateHeavyTailQuantiles is the bugfix's fleet-side
// acceptance check: with 10% of observations in 0.5–5 s (cellular
// promotion / PSM sweep territory) the fixed-range histogram pins p99
// at exactly its 500 ms cap, while the sketch-backed DuQuantile lands
// within the documented rank-error bound of the exact retained sample —
// regardless of how sessions were sharded over workers.
func TestGroupAggregateHeavyTailQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var all stats.Sample
	const workers = 5
	parts := make([]*GroupAggregate, workers)
	for w := range parts {
		parts[w] = newGroupAggregate("g")
	}
	for i := 0; i < 400; i++ {
		s := make(stats.Sample, 100)
		for j := range s {
			if rng.Intn(10) == 0 {
				s[j] = 500*time.Millisecond + time.Duration(rng.Int63n(int64(4500*time.Millisecond)))
			} else {
				s[j] = 10*time.Millisecond + time.Duration(rng.Int63n(int64(90*time.Millisecond)))
			}
		}
		all = append(all, s...)
		r := SessionResult{Sent: len(s)}
		parts[i%workers].fold(&r, s)
	}
	g := newGroupAggregate("g")
	for _, p := range parts {
		if err := g.Merge(p); err != nil {
			t.Fatal(err)
		}
	}

	if g.DuHist.Over == 0 {
		t.Fatal("workload should overflow the histogram range")
	}
	// The pre-sketch failure mode, kept visible: the histogram clamps.
	if got := g.DuHist.Quantile(0.99); got != 500*time.Millisecond {
		t.Fatalf("histogram p99 %v, want clamp at 500ms", got)
	}
	sorted := make(stats.Sample, len(all))
	copy(sorted, all)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		eps := g.DuSketch.QuantileErrorBound(q)
		lo := sorted.Percentile(100 * (q - eps))
		hi := sorted.Percentile(100 * (q + eps))
		got := g.DuQuantile(q)
		if got < lo || got > hi {
			t.Errorf("p%g = %v outside exact rank bracket [%v, %v] (ε=%.2g)", q*100, got, lo, hi, eps)
		}
	}
	if p99 := g.DuQuantile(0.99); p99 < time.Second {
		t.Fatalf("sketch p99 %v still near the histogram cap", p99)
	}
}

// TestReportJSONCarriesSketch locks the report wire format: the
// machine-readable campaign record round-trips the group sketch, so a
// replayed or archived report answers unclamped quantiles too.
func TestReportJSONCarriesSketch(t *testing.T) {
	g := newGroupAggregate("g")
	s := make(stats.Sample, 1000)
	for i := range s {
		s[i] = time.Duration(i+1) * 2 * time.Millisecond // up to 2s, half over the hist cap
	}
	r := SessionResult{Sent: len(s)}
	g.fold(&r, s)
	rep := &Report{Name: "json", Scenario: "custom", Groups: []*GroupAggregate{g}}

	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"du_sketch"`) {
		t.Fatal("report JSON missing du_sketch")
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	bg := back.Group("g")
	if bg == nil || bg.DuSketch == nil || bg.DuSketch.Count != int64(len(s)) {
		t.Fatalf("decoded group lost its sketch: %+v", bg)
	}
	if got, want := back.Groups[0].DuQuantile(0.99), g.DuQuantile(0.99); got != want {
		t.Fatalf("p99 changed across JSON round trip: %v != %v", got, want)
	}
	// Pre-sketch reports (no du_sketch field) must still render via the
	// histogram fallback.
	old := newGroupAggregate("old")
	old.fold(&r, s)
	old.DuSketch = nil
	if got := old.DuQuantile(0.5); got == 0 {
		t.Fatal("histogram fallback quantile is zero")
	}
	// Merging a sketched group into a pre-sketch one must drop the
	// sketch (it would cover only a subset) and keep the hist fallback.
	if err := old.Merge(g); err != nil {
		t.Fatal(err)
	}
	if old.DuSketch != nil {
		t.Fatal("merge with pre-sketch record kept a subset sketch")
	}
	if got := old.DuQuantile(0.5); got == 0 {
		t.Fatal("histogram fallback lost after partial merge")
	}
}

// TestMergeGeometryMismatchLeavesReceiverUnchanged pins merge
// atomicity: a histogram geometry error must not leave the receiver
// with the other group's sketch/moments already folded in.
func TestMergeGeometryMismatchLeavesReceiverUnchanged(t *testing.T) {
	g := newGroupAggregate("g")
	r := SessionResult{Sent: 3}
	g.fold(&r, stats.Sample{30 * time.Millisecond, 40 * time.Millisecond, 50 * time.Millisecond})

	bad := newGroupAggregate("bad")
	bad.fold(&r, stats.Sample{60 * time.Millisecond})
	bad.DuHist = NewHist(0, time.Second, 7) // incompatible geometry

	before := g.Du
	beforeSessions := g.Sessions
	if err := g.Merge(bad); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
	if g.Du != before || g.Sessions != beforeSessions || g.DuSketch.Count != before.N {
		t.Fatalf("failed merge mutated receiver: %+v", g)
	}
}
