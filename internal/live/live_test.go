package live

import (
	"context"
	"testing"
	"time"
)

func startTestServers(t *testing.T) *Servers {
	t.Helper()
	s, err := StartServers("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestTCPConnectProbes(t *testing.T) {
	s := startTestServers(t)
	res, err := Measure(context.Background(), Config{
		Target: s.Addr(), Probe: ProbeTCPConnect, K: 8,
		WarmupDelay: 5 * time.Millisecond, BackgroundInterval: 5 * time.Millisecond,
		WarmupAddr: s.Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Sample()); got != 8 {
		t.Fatalf("completed %d/8 probes (lost %d)", got, res.Lost)
	}
	for _, rec := range res.Records {
		if rec.RTT <= 0 || rec.RTT > time.Second {
			t.Fatalf("probe %d rtt = %v", rec.Seq, rec.RTT)
		}
	}
	if res.BackgroundSent < 2 {
		t.Fatalf("background packets = %d", res.BackgroundSent)
	}
	_, _, conns := s.Stats()
	if conns != 8 {
		t.Fatalf("server saw %d connections", conns)
	}
}

func TestHTTPGetProbes(t *testing.T) {
	s := startTestServers(t)
	res, err := Measure(context.Background(), Config{
		Target: s.Addr(), Probe: ProbeHTTPGet, K: 6,
		WarmupDelay: 5 * time.Millisecond, BackgroundInterval: 10 * time.Millisecond,
		WarmupAddr: s.Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Sample()); got != 6 {
		t.Fatalf("completed %d/6 (lost %d)", got, res.Lost)
	}
	reqs, _, conns := s.Stats()
	if reqs != 6 {
		t.Fatalf("server served %d GETs", reqs)
	}
	if conns != 1 {
		t.Fatalf("persistent prober opened %d connections, want 1", conns)
	}
}

func TestUDPEchoProbes(t *testing.T) {
	s := startTestServers(t)
	res, err := Measure(context.Background(), Config{
		Target: s.Addr(), Probe: ProbeUDPEcho, K: 6,
		WarmupDelay: 5 * time.Millisecond, BackgroundInterval: 10 * time.Millisecond,
		WarmupAddr: s.Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Sample()); got != 6 {
		t.Fatalf("completed %d/6 (lost %d)", got, res.Lost)
	}
}

func TestNoBackgroundMode(t *testing.T) {
	s := startTestServers(t)
	res, err := Measure(context.Background(), Config{
		Target: s.Addr(), Probe: ProbeTCPConnect, K: 3, NoBackground: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BackgroundSent != 0 {
		t.Fatalf("background packets = %d with NoBackground", res.BackgroundSent)
	}
	if len(res.Sample()) != 3 {
		t.Fatalf("completed %d/3", len(res.Sample()))
	}
}

func TestContextCancellation(t *testing.T) {
	s := startTestServers(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Measure(ctx, Config{Target: s.Addr(), Probe: ProbeTCPConnect, K: 100})
	if err == nil {
		t.Fatal("cancelled measurement returned no error")
	}
	if len(res.Records) == 100 {
		t.Fatal("cancelled measurement ran to completion")
	}
}

func TestProbeFailureOnClosedPort(t *testing.T) {
	// Find a port that is certainly closed: bind, record, release.
	s := startTestServers(t)
	addr := s.Addr()
	s.Close()
	res, err := Measure(context.Background(), Config{
		Target: addr, Probe: ProbeTCPConnect, K: 2,
		ProbeTimeout: 200 * time.Millisecond, NoBackground: true,
	})
	if err != nil {
		t.Fatalf("Measure itself errored: %v", err)
	}
	if res.Lost != 2 {
		t.Fatalf("lost = %d, want 2 (connect refused)", res.Lost)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Measure(context.Background(), Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := Measure(context.Background(), Config{Target: "not-an-addr", NoBackground: false}); err == nil {
		t.Fatal("malformed target accepted")
	}
}

func TestBackgroundCadence(t *testing.T) {
	s := startTestServers(t)
	start := time.Now()
	res, err := Measure(context.Background(), Config{
		Target: s.Addr(), Probe: ProbeUDPEcho, K: 20,
		WarmupDelay: 10 * time.Millisecond, BackgroundInterval: 10 * time.Millisecond,
		WarmupAddr: s.Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// Expect roughly elapsed/db background packets (±50% for scheduling).
	expect := int(elapsed / (10 * time.Millisecond))
	if res.BackgroundSent < expect/2 || res.BackgroundSent > 2*expect+2 {
		t.Fatalf("background packets = %d over %v, expected ≈%d", res.BackgroundSent, elapsed, expect)
	}
}
