// Package am001fix is the AM001 golden fixture: sim-determinism
// violations next to their fixed forms. golden_test.go loads it under
// a repro/internal/simtime import path so the scope rule applies
// exactly as it does on the real tree.
package am001fix

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Stamp reads the wall clock in a sim path.
func Stamp() time.Time {
	return time.Now() // want "AM001: time.Now in a sim path"
}

// Jitter draws from the process-global source.
func Jitter() int {
	return rand.Intn(100) // want "AM001: global math/rand.Intn is process-seeded"
}

// SeededJitter draws from an explicit seeded generator: the fixed form.
func SeededJitter(r *rand.Rand) int {
	return r.Intn(100)
}

// DumpOrder prints in map iteration order.
func DumpOrder(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "AM001: output emitted in map iteration order"
	}
}

// CollectUnsorted fills a slice in map order and never sorts it.
func CollectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want "AM001: keys is filled in map iteration order"
		keys = append(keys, k)
	}
	return keys
}

// CollectSorted is the fixed idiom: collect, then sort, then use.
func CollectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WaivedStamp documents a deliberate wall-clock read.
func WaivedStamp() time.Time {
	return time.Now() /* wantsup "AM001: time.Now in a sim path" */ //acutemon:ignore AM001 fixture waiver: live-path timestamp kept for the suppressed golden case
}
