// Package sdio models the host↔WNIC bus power management that the paper
// identifies as the main *internal* source of delay inflation (§3.2.1).
//
// In the bcmdhd driver a watchdog runs every dhd_watchdog_ms (10 ms) and
// increments an idlecount whenever the hardware was idle over the last
// tick; when idlecount reaches idletime (5, i.e. 50 ms of idleness) the
// driver puts the SDIO bus to sleep. A packet-send request or a packet
// arrival interrupt must then bring the bus back up, which Table 3
// measures at up to ~14 ms. Qualcomm's wcnss driver applies the same
// scheme to its SMD interface with smaller wake costs; the paper folds
// both under "SDIO bus sleep", and so does this package.
package sdio

import (
	"fmt"
	"time"

	"repro/internal/simtime"
	"repro/internal/trace"
)

// Config parameterises the bus power model.
type Config struct {
	// Name labels the bus in traces ("SDIO" for Broadcom, "SMD" for
	// Qualcomm).
	Name string
	// WatchdogInterval is dhd_watchdog_ms (default 10 ms).
	WatchdogInterval time.Duration
	// IdleTime is the idletime threshold in watchdog ticks (default 5,
	// so the default idle period before sleeping is 50 ms).
	IdleTime int
	// SleepEnabled mirrors the dhdsdio_bussleep knob; the paper's Table 3
	// experiment recompiles the kernel with it disabled.
	SleepEnabled bool
	// WakeTxLatency is the cost of a host-initiated bus wake (KSO write,
	// backplane clock request) paid by dhd_start_xmit when the bus
	// sleeps. Calibrated to Table 3's dvsend row.
	WakeTxLatency simtime.Dist
	// WakeRxLatency is the cost of serving a device interrupt with the
	// bus asleep, paid on the receive path (dvrecv row of Table 3).
	WakeRxLatency simtime.Dist
}

// Broadcom returns the BCM4339-calibrated configuration (Nexus 5).
func Broadcom() Config {
	return Config{
		Name:             "SDIO",
		WatchdogInterval: 10 * time.Millisecond,
		IdleTime:         5,
		SleepEnabled:     true,
		WakeTxLatency:    simtime.Uniform{Lo: 7500 * time.Microsecond, Hi: 12500 * time.Microsecond},
		WakeRxLatency:    simtime.Uniform{Lo: 8500 * time.Microsecond, Hi: 13 * time.Millisecond},
	}
}

// Qualcomm returns the WCN36xx/SMD-calibrated configuration (Nexus 4,
// HTC One). The SMD wake is considerably cheaper than SDIO's, which is
// why Table 2 shows the Nexus 4's internal inflation at ~5 ms against
// the Nexus 5's ~20 ms.
func Qualcomm() Config {
	return Config{
		Name:             "SMD",
		WatchdogInterval: 10 * time.Millisecond,
		IdleTime:         5,
		SleepEnabled:     true,
		WakeTxLatency:    simtime.Uniform{Lo: 2500 * time.Microsecond, Hi: 6 * time.Millisecond},
		WakeRxLatency:    simtime.Uniform{Lo: 1500 * time.Microsecond, Hi: 4 * time.Millisecond},
	}
}

// Stats counts bus power events.
type Stats struct {
	Sleeps     uint64
	Wakes      uint64
	TxAcquires uint64
	RxAcquires uint64
	// WakesPaidTx/Rx count acquisitions that found the bus asleep.
	WakesPaidTx uint64
	WakesPaidRx uint64
	// TotalWakeTime accumulates wake latencies.
	TotalWakeTime time.Duration
}

// Direction tags a bus acquisition.
type Direction int

// Acquisition directions.
const (
	Tx Direction = iota
	Rx
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == Tx {
		return "tx"
	}
	return "rx"
}

// Bus is the power-managed host interconnect. All methods run on the
// simulation event loop.
type Bus struct {
	sim *simtime.Sim
	cfg Config
	tr  *trace.Trace

	asleep    bool
	waking    bool
	idlecount int
	// lastActivity is when data last moved across the bus.
	lastActivity time.Duration
	pending      []func()
	watchdog     *simtime.Ticker

	// OnPower, when set, observes sleep transitions (energy accounting).
	OnPower func(asleep bool)

	Stats Stats
}

// setAsleep flips the sleep state, notifying observers.
func (b *Bus) setAsleep(asleep bool) {
	if b.asleep == asleep {
		return
	}
	b.asleep = asleep
	if b.OnPower != nil {
		b.OnPower(asleep)
	}
}

// New creates a bus and starts its watchdog. tr may be nil.
func New(sim *simtime.Sim, cfg Config, tr *trace.Trace) *Bus {
	if cfg.WatchdogInterval <= 0 {
		cfg.WatchdogInterval = 10 * time.Millisecond
	}
	if cfg.IdleTime <= 0 {
		cfg.IdleTime = 5
	}
	b := &Bus{sim: sim, cfg: cfg, tr: tr, lastActivity: sim.Now()}
	b.watchdog = simtime.NewTicker(sim, cfg.WatchdogInterval, cfg.WatchdogInterval, b.onWatchdog)
	return b
}

// Config returns the bus configuration.
func (b *Bus) Config() Config { return b.cfg }

// Asleep reports whether the bus is sleeping.
func (b *Bus) Asleep() bool { return b.asleep }

// IdlePeriod returns the configured idle period before sleep
// (IdleTime × WatchdogInterval), the paper's Tis.
func (b *Bus) IdlePeriod() time.Duration {
	return time.Duration(b.cfg.IdleTime) * b.cfg.WatchdogInterval
}

// SetSleepEnabled flips the bus-sleep feature at runtime, the equivalent
// of the paper's driver modification for Table 3 and Figure 9.
func (b *Bus) SetSleepEnabled(on bool) {
	b.cfg.SleepEnabled = on
	if !on && b.asleep && !b.waking {
		// Bring the bus up for good.
		b.setAsleep(false)
		b.idlecount = 0
		b.Stats.Wakes++
		b.tr.Add(b.sim.Now(), b.cfg.Name, "bus_wake", "sleep disabled")
	}
}

// onWatchdog is the dhd_watchdog tick: count idleness, demote when the
// idlecount reaches idletime.
func (b *Bus) onWatchdog() {
	if b.asleep || b.waking {
		return
	}
	if b.sim.Now()-b.lastActivity < b.cfg.WatchdogInterval {
		b.idlecount = 0
		return
	}
	b.idlecount++
	if b.cfg.SleepEnabled && b.idlecount >= b.cfg.IdleTime {
		b.setAsleep(true)
		b.idlecount = 0
		b.Stats.Sleeps++
		b.tr.Add(b.sim.Now(), b.cfg.Name, "bus_sleep", "")
	}
}

// Touch marks bus activity, resetting the idle countdown (data moved on
// behalf of an already-acquired operation).
func (b *Bus) Touch() {
	b.lastActivity = b.sim.Now()
	b.idlecount = 0
}

// IdleFor returns how long the bus has been without activity.
func (b *Bus) IdleFor() time.Duration { return b.sim.Now() - b.lastActivity }

// Acquire requests the bus for a transfer. fn runs once the bus is awake
// with the backplane clock ready: immediately when the bus is up, after
// the wake latency when asleep. Concurrent acquisitions during a wake
// coalesce onto the same wake (a single KSO/clock bring-up serves them
// all), matching the dpc loop's behaviour.
func (b *Bus) Acquire(dir Direction, fn func()) {
	if fn == nil {
		panic("sdio: nil acquire callback")
	}
	if dir == Tx {
		b.Stats.TxAcquires++
	} else {
		b.Stats.RxAcquires++
	}
	if !b.asleep {
		b.Touch()
		fn()
		return
	}
	if dir == Tx {
		b.Stats.WakesPaidTx++
	} else {
		b.Stats.WakesPaidRx++
	}
	b.pending = append(b.pending, fn)
	if b.waking {
		return
	}
	b.waking = true
	var lat time.Duration
	if dir == Tx && b.cfg.WakeTxLatency != nil {
		lat = b.cfg.WakeTxLatency.Sample(b.sim)
	} else if dir == Rx && b.cfg.WakeRxLatency != nil {
		lat = b.cfg.WakeRxLatency.Sample(b.sim)
	}
	b.Stats.TotalWakeTime += lat
	b.tr.Addf(b.sim.Now(), b.cfg.Name, "bus_waking", "dir=%s lat=%v", dir, lat)
	b.sim.Schedule(lat, func() {
		b.waking = false
		b.setAsleep(false)
		b.Stats.Wakes++
		b.Touch()
		b.tr.Add(b.sim.Now(), b.cfg.Name, "bus_wake", "")
		queued := b.pending
		b.pending = nil
		for _, f := range queued {
			f()
		}
	})
}

// String summarises the bus state.
func (b *Bus) String() string {
	state := "awake"
	if b.asleep {
		state = "asleep"
	}
	if b.waking {
		state = "waking"
	}
	return fmt.Sprintf("%s{%s idlecount=%d}", b.cfg.Name, state, b.idlecount)
}
