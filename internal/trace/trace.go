// Package trace records time-ordered event traces. The simulated WNIC
// drivers use it to reproduce the paper's Figures 4 and 5 (the bcmdhd
// function-call chains for packet send and receive), and AcuteMon uses it
// for the Figure 6 measurement timeline.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Event is one trace record.
type Event struct {
	At    time.Duration
	Actor string // e.g. "dpc", "rxf", "BT", "MT"
	Name  string // function or action name
	Attrs string // free-form details
}

// String renders the event on one line.
func (e Event) String() string {
	s := fmt.Sprintf("%12v  %-8s %s", e.At, e.Actor, e.Name)
	if e.Attrs != "" {
		s += "  (" + e.Attrs + ")"
	}
	return s
}

// Trace is an append-only event log. The zero value is ready to use; a
// nil *Trace discards events, so components can be traced optionally
// without nil checks at every call site.
type Trace struct {
	events []Event
	max    int
}

// New returns a trace that keeps at most max events (0 = unlimited).
func New(max int) *Trace { return &Trace{max: max} }

// Add appends an event; it is a no-op on a nil trace.
func (t *Trace) Add(at time.Duration, actor, name, attrs string) {
	if t == nil {
		return
	}
	if t.max > 0 && len(t.events) >= t.max {
		return
	}
	t.events = append(t.events, Event{At: at, Actor: actor, Name: name, Attrs: attrs})
}

// Addf is Add with a formatted attrs string.
func (t *Trace) Addf(at time.Duration, actor, name, format string, args ...any) {
	if t == nil {
		return
	}
	t.Add(at, actor, name, fmt.Sprintf(format, args...))
}

// Events returns the recorded events in insertion order.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Len returns the number of recorded events (0 for nil).
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Reset discards all events.
func (t *Trace) Reset() {
	if t != nil {
		t.events = t.events[:0]
	}
}

// Filter returns the events whose actor matches.
func (t *Trace) Filter(actor string) []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for _, e := range t.events {
		if e.Actor == actor {
			out = append(out, e)
		}
	}
	return out
}

// Find returns the first event with the given name after (inclusive) at,
// or a zero Event and false.
func (t *Trace) Find(name string, at time.Duration) (Event, bool) {
	if t == nil {
		return Event{}, false
	}
	for _, e := range t.events {
		if e.Name == name && e.At >= at {
			return e, true
		}
	}
	return Event{}, false
}

// Names returns the distinct event names in first-appearance order.
func (t *Trace) Names() []string {
	if t == nil {
		return nil
	}
	seen := map[string]bool{}
	var out []string
	for _, e := range t.events {
		if !seen[e.Name] {
			seen[e.Name] = true
			out = append(out, e.Name)
		}
	}
	return out
}

// Render formats the whole trace, sorted by time (stably, so equal-time
// events keep insertion order).
func (t *Trace) Render() string {
	if t == nil || len(t.events) == 0 {
		return "(empty trace)\n"
	}
	evs := append([]Event(nil), t.events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	var b strings.Builder
	for _, e := range evs {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderCallChain renders events as an indented call chain in the style
// of the paper's Figures 4 and 5: events at the same actor are listed in
// order with arrows between successive calls.
func (t *Trace) RenderCallChain(actor string) string {
	evs := t.Filter(actor)
	if len(evs) == 0 {
		return "(no events for " + actor + ")\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "[%s]\n", actor)
	for i, e := range evs {
		prefix := "└─"
		if i < len(evs)-1 {
			prefix = "├─"
		}
		fmt.Fprintf(&b, "  %s %s  @%v", prefix, e.Name, e.At)
		if e.Attrs != "" {
			fmt.Fprintf(&b, "  (%s)", e.Attrs)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
