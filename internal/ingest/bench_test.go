package ingest

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/fleet"
)

// benchBatch synthesizes one wire batch: size summaries of k RTTs each,
// spread over a five-model census so store striping is exercised.
func benchBatch(size, k int) []Summary {
	models := []string{"Google Nexus 5", "Samsung Grand", "Google Nexus 4", "Sony Xperia J", "HTC One"}
	out := make([]Summary, size)
	for i := range out {
		rtts := make([]int64, k)
		for j := range rtts {
			rtts[j] = int64(30*time.Millisecond) + int64(i*j)*int64(time.Microsecond)%int64(20*time.Millisecond)
		}
		out[i] = Summary{
			Device: models[i%len(models)], TimeMS: 1,
			Sent: k, RTTs: rtts, LayersOK: true,
			UserOverheadNS: int64(2 * time.Millisecond),
			SDIOOverheadNS: int64(11 * time.Millisecond),
			PSMInflationNS: int64(40 * time.Millisecond),
		}
	}
	return out
}

// BenchmarkIngestLoopback prices the acceptance target: session
// summaries per second through the full loopback wire path (HTTP POST →
// decode → queue → puncture → fold), batching enabled. The
// summaries/sec metric counts summaries *folded into the store*, not
// just accepted.
func BenchmarkIngestLoopback(b *testing.B) {
	const batchSize = 100
	s, err := Start(Config{Window: -1, QueueDepth: 1024})
	if err != nil {
		b.Fatal(err)
	}
	var body bytes.Buffer
	if err := EncodeBatch(&body, benchBatch(batchSize, 20)); err != nil {
		b.Fatal(err)
	}
	raw := body.Bytes()
	client := &http.Client{Timeout: 30 * time.Second}

	post := func() error {
		for {
			resp, err := client.Post(s.URL()+"/v1/ingest", "application/x-ndjson", bytes.NewReader(raw))
			if err != nil {
				return err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusAccepted {
				return nil
			}
			if resp.StatusCode != http.StatusServiceUnavailable {
				return fmt.Errorf("status %s", resp.Status)
			}
			time.Sleep(time.Millisecond)
		}
	}

	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := post(); err != nil {
				b.Error(err)
				return
			}
		}
	})
	// Include the drain so the metric reflects summaries actually folded.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		b.Fatal(err)
	}
	elapsed := time.Since(start)
	b.StopTimer()
	folded := s.metrics.FoldedSummaries.Load()
	if folded != int64(b.N)*batchSize {
		b.Fatalf("folded %d of %d summaries", folded, int64(b.N)*batchSize)
	}
	b.ReportMetric(float64(folded)/elapsed.Seconds(), "summaries/sec")
	b.ReportMetric(float64(s.metrics.FoldedSamples.Load())/elapsed.Seconds(), "rtts/sec")
}

// BenchmarkStoreFold prices the pure fold path (no HTTP, no decode) —
// the ceiling the wire path converges to as batching amortizes
// transport.
func BenchmarkStoreFold(b *testing.B) {
	st := NewStore(0, 0)
	p := NewPuncturer(nil, 0)
	batch := benchBatch(100, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := &batch[i%len(batch)]
		corr, src := p.Correction(s)
		st.Fold(s, corr, src)
	}
}

// BenchmarkDecodeBatch prices wire parsing, usually the hot half of the
// handler.
func BenchmarkDecodeBatch(b *testing.B) {
	var buf bytes.Buffer
	if err := EncodeBatch(&buf, benchBatch(100, 20)); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBatch(bytes.NewReader(raw), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamCampaign prices the full pipeline end to end: simulate
// sessions, serialize, post, fold.
func BenchmarkStreamCampaign(b *testing.B) {
	sc, _ := fleet.ScenarioByName("device-mix")
	sessions := sc.Build(fleet.Params{Sessions: 32, Seed: 5, Probes: 20})
	for i := 0; i < b.N; i++ {
		s, err := Start(Config{Window: -1})
		if err != nil {
			b.Fatal(err)
		}
		lg := &LoadGen{URL: s.URL(), TimeMS: 1}
		rep, err := lg.StreamCampaign(context.Background(), fleet.Campaign{
			Name: "bench", Scenario: "device-mix", Seed: 5, Sessions: sessions,
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Errors != 0 {
			b.Fatal(rep.FirstErrors)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		if err := s.Shutdown(ctx); err != nil {
			b.Fatal(err)
		}
		cancel()
	}
}
