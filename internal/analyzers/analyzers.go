// Package analyzers is the project-invariant static-analysis suite
// behind cmd/acutemon-vet. Each analyzer mechanically enforces a rule
// this codebase depends on for correctness but that go vet cannot
// know about — invariants that previously lived in prose comments and
// regressed silently when a hot path was touched:
//
//	AM001 sim-determinism   sim paths must stay bit-deterministic
//	AM002 decode-bounds     wire-derived sizes need a cap check first
//	AM003 lock-discipline   never nest two shard/stripe locks
//	AM004 atomic-consistency no plain access to atomically-used fields
//	AM005 context-first     exported blocking APIs take ctx first
//
// The suite is stdlib-only (go/ast, go/parser, go/types); packages are
// loaded via `go list -export` so type information is exact, not
// syntactic. A finding is suppressed by an inline comment on the same
// line or the line above:
//
//	//acutemon:ignore AM001 live path timestamps are wall-clock by design
//
// The code and a non-empty reason are both mandatory; a malformed
// suppression is itself reported as AM000 and cannot be suppressed.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned for file:line(:col) output.
type Diagnostic struct {
	Code       string `json:"code"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
	// Reason carries the suppression's justification when Suppressed.
	Reason string `json:"reason,omitempty"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Code, d.Message)
}

// Package is one type-checked package of the module under analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Module is every loaded package, sharing one FileSet. Analyzers see
// the whole module at once so cross-package facts (AM004's atomic-use
// set) need no extra plumbing.
type Module struct {
	Fset *token.FileSet
	Pkgs []*Package
}

// Analyzer is one invariant check over a whole module.
type Analyzer interface {
	// Code is the stable diagnostic code ("AM001"); it is what
	// suppression comments name.
	Code() string
	// Name is the short human label ("sim-determinism").
	Name() string
	// Doc is a one-line description of the enforced invariant.
	Doc() string
	// Run reports every violation found in m.
	Run(m *Module, report func(pos token.Position, msg string))
}

// Suite returns the full analyzer set in diagnostic-code order.
func Suite() []Analyzer {
	return []Analyzer{
		AM001{},
		AM002{},
		AM003{},
		AM004{},
		AM005{},
	}
}

// Run executes every analyzer over m, applies suppression comments,
// and returns all diagnostics (suppressed ones flagged, malformed
// suppressions as AM000) sorted by position then code.
func Run(m *Module, suite []Analyzer) []Diagnostic {
	sups := collectSuppressions(m)
	var out []Diagnostic
	for _, a := range suite {
		code := a.Code()
		a.Run(m, func(pos token.Position, msg string) {
			d := Diagnostic{
				Code:    code,
				File:    pos.Filename,
				Line:    pos.Line,
				Col:     pos.Column,
				Message: msg,
			}
			if reason, ok := sups.match(code, pos); ok {
				d.Suppressed = true
				d.Reason = reason
			}
			out = append(out, d)
		})
	}
	out = append(out, sups.malformed...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Code < b.Code
	})
	return out
}

// Active filters ds down to the findings that gate a build: everything
// unsuppressed, AM000 included.
func Active(ds []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range ds {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// inScope reports whether pkgPath is covered by any of the given
// import-path prefixes (exact match or subpackage).
func inScope(pkgPath string, prefixes []string) bool {
	for _, p := range prefixes {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// usesObject reports whether any identifier inside e resolves to an
// object in objs.
func usesObject(info *types.Info, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := info.Uses[id]; obj != nil && objs[obj] {
			found = true
		}
		return !found
	})
	return found
}

// unparen strips any parenthesis layers (ast.Unparen needs go 1.22;
// the module floor is 1.21).
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeObj resolves a call's callee to its types object (function or
// method), or nil.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	}
	return nil
}

// isPkgFunc reports whether obj is the package-level function
// pkgPath.name.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
