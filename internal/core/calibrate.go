package core

import (
	"time"

	"repro/internal/android"
	"repro/internal/packet"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// Calibration is the result of the training procedure the paper lists
// as future work (§4.1): inferring a phone's demotion timers so dpre and
// db can be chosen as Tprom < dpre < min(Tis, Tip), db < min(Tis, Tip).
type Calibration struct {
	// Tip is the estimated PSM timeout (Table 4's measurement).
	Tip time.Duration
	// TipSamples are the per-round observations behind Tip.
	TipSamples stats.Sample
	// Tis is the estimated bus-sleep idle period (0 when undetectable,
	// e.g. with bus sleep disabled).
	Tis time.Duration
	// RecommendedWarmup / RecommendedInterval are safe dpre / db values.
	RecommendedWarmup   time.Duration
	RecommendedInterval time.Duration
}

// CalibrateOptions tunes the training procedure.
type CalibrateOptions struct {
	// TipRounds is the number of PSM-timeout observations (default 8).
	TipRounds int
	// TisMax bounds the bus-sleep sweep (default 150 ms).
	TisMax time.Duration
	// TisStep is the sweep granularity (default 10 ms).
	TisStep time.Duration
	// PairsPerGap is the probe pairs measured per sweep point (default 6).
	PairsPerGap int
}

func (o *CalibrateOptions) fill() {
	if o.TipRounds <= 0 {
		o.TipRounds = 8
	}
	if o.TisMax <= 0 {
		o.TisMax = 150 * time.Millisecond
	}
	if o.TisStep <= 0 {
		o.TisStep = 10 * time.Millisecond
	}
	if o.PairsPerGap <= 0 {
		o.PairsPerGap = 6
	}
}

// Calibrate runs the training procedure on the testbed phone and drives
// the simulation to completion. It needs only unprivileged observations:
// the sniffers for Tip (watching for the PM=1 null frame, which is how
// the paper measured Table 4) and user-level RTT knees for Tis.
func Calibrate(tb *testbed.Testbed, opts CalibrateOptions) Calibration {
	opts.fill()
	cal := Calibration{}
	cal.TipSamples = estimateTip(tb, opts)
	if len(cal.TipSamples) > 0 {
		cal.Tip = cal.TipSamples.Median()
	}
	cal.Tis = estimateTis(tb, opts)

	min := cal.Tip
	if cal.Tis > 0 && cal.Tis < min {
		min = cal.Tis
	}
	if min <= 0 {
		min = 40 * time.Millisecond // conservative fallback
	}
	rec := min / 2
	if rec < 5*time.Millisecond {
		rec = 5 * time.Millisecond
	}
	if rec > 50*time.Millisecond {
		rec = 50 * time.Millisecond
	}
	cal.RecommendedWarmup = rec
	cal.RecommendedInterval = rec
	return cal
}

// estimateTip sends one TTL=1 packet per round (so no response resets
// the timers) and measures, on the sniffer capture, the time from the
// packet's air appearance to the phone's PM=1 null-data frame.
func estimateTip(tb *testbed.Testbed, opts CalibrateOptions) stats.Sample {
	phone := tb.Phone
	sock, err := phone.Stack.OpenUDP(0)
	if err != nil {
		return nil
	}
	defer sock.Close()

	var samples stats.Sample
	// Rounds must be separated by more than any plausible Tip.
	const gap = 800 * time.Millisecond
	type round struct{ pktID uint64 }
	rounds := make([]round, opts.TipRounds)
	for i := 0; i < opts.TipRounds; i++ {
		i := i
		tb.Sim.Schedule(time.Duration(i+1)*gap, func() {
			p := sock.SendTo(testbed.WarmupIP, 33434, []byte{0xCA}, 1)
			rounds[i].pktID = p.ID
		})
	}
	tb.Sim.RunFor(time.Duration(opts.TipRounds+2) * gap)

	// Post-process the merged capture: for each round packet, find the
	// next PM=1 null-data frame from the phone.
	merged := tb.MergedCapture()
	var nulls []time.Duration
	for _, sn := range tb.Sniffers {
		for _, r := range sn.Records() {
			d11 := r.Frame.Dot11()
			if d11 != nil && d11.IsNullData() && d11.PwrMgmt && d11.Addr2 == phone.MACAddr {
				nulls = append(nulls, r.Timestamp())
			}
		}
	}
	for _, rd := range rounds {
		ton, ok := merged.TimeOf(rd.pktID)
		if !ok {
			continue
		}
		best := time.Duration(-1)
		for _, tn := range nulls {
			if tn > ton && (best < 0 || tn < best) {
				best = tn
			}
		}
		if best > 0 && best-ton < gap {
			samples = append(samples, best-ton)
		}
	}
	return samples
}

// estimateTis sweeps the idle gap before a probe pair and finds the knee
// where the first probe's RTT jumps above the second's: that jump is the
// bus wake cost appearing once the gap exceeds Tis.
func estimateTis(tb *testbed.Testbed, opts CalibrateOptions) time.Duration {
	phone := tb.Phone
	type gapStat struct {
		gap  time.Duration
		diff stats.Sample
	}
	var sweeps []gapStat

	measurePair := func(onDone func(first, second time.Duration)) {
		var firstRTT time.Duration
		probe := func(done func(rtt time.Duration)) {
			start := tb.Sim.Now()
			finished := false
			conn := phone.Stack.Dial(testbed.ServerIP, 80)
			conn.OnConnected = func(at time.Duration, synAck *packet.Packet) {
				if finished {
					return
				}
				finished = true
				conn.Close()
				done(at - start)
			}
			tb.Sim.Schedule(2*time.Second, func() {
				if !finished {
					finished = true
					done(-1)
				}
			})
		}
		probe(func(rtt1 time.Duration) {
			firstRTT = rtt1
			probe(func(rtt2 time.Duration) { onDone(firstRTT, rtt2) })
		})
	}

	for g := opts.TisStep; g <= opts.TisMax; g += opts.TisStep {
		gs := gapStat{gap: g}
		for i := 0; i < opts.PairsPerGap; i++ {
			doneCh := false
			// Idle for the gap, then fire a pair.
			tb.Sim.RunFor(g)
			measurePair(func(first, second time.Duration) {
				if first > 0 && second > 0 {
					gs.diff = append(gs.diff, first-second)
				}
				doneCh = true
			})
			for !doneCh && tb.Sim.Step() {
			}
		}
		sweeps = append(sweeps, gs)
	}

	// Knee detection: adaptive threshold at half the maximum median
	// inflation.
	var maxMed time.Duration
	for _, gs := range sweeps {
		if m := gs.diff.Median(); m > maxMed {
			maxMed = m
		}
	}
	if maxMed < 1500*time.Microsecond {
		return 0 // no detectable bus-sleep penalty
	}
	for _, gs := range sweeps {
		if gs.diff.Median() > maxMed/2 {
			// The probe that paid the wake had been idle for roughly the
			// gap plus the previous pair's tail; report the gap itself.
			return gs.gap
		}
	}
	return 0
}

// RunCalibrated calibrates and then runs AcuteMon with the recommended
// parameters, the full closed loop the paper sketches.
func RunCalibrated(tb *testbed.Testbed, base Config, opts CalibrateOptions) (*Result, Calibration) {
	cal := Calibrate(tb, opts)
	base.WarmupDelay = cal.RecommendedWarmup
	base.BackgroundInterval = cal.RecommendedInterval
	mon := New(tb, base)
	res := mon.Run()
	return res, cal
}

// effectiveMinTimer is a helper used by tests to cross-check the
// calibration against the phone's configured timers.
func effectiveMinTimer(phone *android.Phone) time.Duration {
	tip := phone.Profile.PSMTimeout
	tis := phone.Drv.Bus().IdlePeriod()
	if tis < tip {
		return tis
	}
	return tip
}
