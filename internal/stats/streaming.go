package stats

import (
	"math"
	"time"

	"repro/internal/agg"
)

// Streaming accumulates the same headline statistics Sample.Summarize
// reports — mean ± CI95, min/median/max, stddev, upper percentiles —
// without ever holding the sample: moments stream through a Welford
// accumulator and order statistics through a mergeable quantile sketch.
// It is the Summarize for callers that cannot afford O(n) memory (a
// crowd-scale fold over millions of probes) or that need partial
// summaries built on different workers merged into one.
//
// Mean, CI95, stddev, min, and max match Sample.Summarize exactly (up
// to float accumulation order); percentiles carry the sketch's
// documented rank-error bound instead of being exact. Not safe for
// concurrent use — merge worker-local accumulators instead.
type Streaming struct {
	moments agg.Moments
	sketch  *agg.Sketch
}

// NewStreaming returns an empty accumulator (compression <= 0 selects
// the default sketch compression).
func NewStreaming(compression float64) *Streaming {
	return &Streaming{sketch: agg.NewSketch(compression)}
}

// ensure makes the zero value usable, like every other accumulator in
// the repo: a Streaming declared without NewStreaming gets the default
// sketch on first use.
func (t *Streaming) ensure() {
	if t.sketch == nil {
		t.sketch = agg.NewSketch(0)
	}
}

// Add folds one observation in.
func (t *Streaming) Add(d time.Duration) {
	t.ensure()
	t.moments.Add(float64(d))
	t.sketch.AddDuration(d)
}

// AddSample folds a whole sample in.
func (t *Streaming) AddSample(s Sample) {
	for _, v := range s {
		t.Add(v)
	}
}

// Merge folds another accumulator in without mutating it.
func (t *Streaming) Merge(o *Streaming) {
	if o == nil {
		return
	}
	t.ensure()
	t.moments.Merge(o.moments)
	t.sketch.Merge(o.sketch)
}

// N returns the observation count.
func (t *Streaming) N() int64 { return t.moments.N }

// Quantile returns the q-th (0..1) quantile estimate.
func (t *Streaming) Quantile(q float64) time.Duration {
	t.ensure()
	return t.sketch.QuantileDuration(q)
}

// QuantileErrorBound exposes the sketch's documented rank-error bound.
func (t *Streaming) QuantileErrorBound(q float64) float64 {
	t.ensure()
	return t.sketch.QuantileErrorBound(q)
}

// Sketch exposes the underlying quantile sketch (shared, not a copy) so
// callers can persist or re-merge it.
func (t *Streaming) Sketch() *agg.Sketch {
	t.ensure()
	return t.sketch
}

// Summarize derives the Sample.Summarize-shaped summary from the
// streamed state.
func (t *Streaming) Summarize() Summary {
	n := t.moments.N
	if n == 0 {
		return Summary{}
	}
	sm := Summary{
		N:      int(n),
		Mean:   time.Duration(t.moments.Mean),
		Min:    time.Duration(t.moments.MinV),
		Max:    time.Duration(t.moments.MaxV),
		Stddev: time.Duration(t.moments.Stddev()),
		Median: t.Quantile(0.50),
		P25:    t.Quantile(0.25),
		P75:    t.Quantile(0.75),
		P90:    t.Quantile(0.90),
		P99:    t.Quantile(0.99),
	}
	if n >= 2 {
		se := math.Sqrt(t.moments.Variance() / float64(n))
		sm.CI95 = time.Duration(tCritical95(int(n)-1) * se)
	}
	return sm
}
