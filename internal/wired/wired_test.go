package wired

import (
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/simtime"
)

type fakeNode struct {
	ip    packet.IPv4Addr
	got   []*packet.Packet
	gotAt []time.Duration
	sim   *simtime.Sim
}

func (f *fakeNode) IP() packet.IPv4Addr { return f.ip }
func (f *fakeNode) DeliverFromDevice(p *packet.Packet) {
	f.got = append(f.got, p)
	f.gotAt = append(f.gotAt, f.sim.Now())
}

func udpPacket(fac *packet.Factory, src, dst packet.IPv4Addr, ttl byte) *packet.Packet {
	return fac.NewPacket(
		&packet.IPv4{TTL: ttl, Protocol: packet.ProtoUDP, Src: src, Dst: dst},
		&packet.UDP{SrcPort: 1000, DstPort: 2000},
		&packet.Payload{Data: []byte("x")},
	)
}

func setup(seed int64, cfg Config) (*simtime.Sim, *Network, *packet.Factory) {
	sim := simtime.New(seed)
	fac := &packet.Factory{}
	return sim, New(sim, fac, cfg), fac
}

func TestHostToHostForwarding(t *testing.T) {
	sim, n, fac := setup(1, DefaultConfig())
	a := &fakeNode{ip: packet.IP(10, 0, 0, 1), sim: sim}
	b := &fakeNode{ip: packet.IP(10, 0, 0, 2), sim: sim}
	sendA := n.AttachHost(a, nil, nil)
	n.AttachHost(b, nil, nil)
	sendA(udpPacket(fac, a.ip, b.ip, 64))
	sim.RunUntil(10 * time.Millisecond)
	if len(b.got) != 1 {
		t.Fatalf("b received %d packets", len(b.got))
	}
	if len(a.got) != 0 {
		t.Fatal("sender received its own packet")
	}
	if n.Stats.Forwarded.Load() != 1 {
		t.Fatalf("forwarded = %d", n.Stats.Forwarded.Load())
	}
}

func TestNetemDelayOnServerPort(t *testing.T) {
	// Emulate `tc` adding 15ms each way on the server port: RTT +30ms.
	sim, n, fac := setup(2, DefaultConfig())
	phoneSide := &fakeNode{ip: packet.IP(10, 0, 0, 1), sim: sim}
	server := &fakeNode{ip: packet.IP(10, 0, 0, 9), sim: sim}
	send := n.AttachHost(phoneSide, nil, nil)
	n.AttachHost(server, simtime.Const(15*time.Millisecond), simtime.Const(15*time.Millisecond))
	start := sim.Now()
	send(udpPacket(fac, phoneSide.ip, server.ip, 64))
	sim.RunUntil(100 * time.Millisecond)
	if len(server.got) != 1 {
		t.Fatalf("server received %d", len(server.got))
	}
	oneWay := server.gotAt[0] - start
	if oneWay < 15*time.Millisecond || oneWay > 16*time.Millisecond {
		t.Fatalf("one-way = %v, want ~15ms", oneWay)
	}
}

func TestTTLDecrementAcrossGateway(t *testing.T) {
	sim, n, fac := setup(3, DefaultConfig())
	server := &fakeNode{ip: packet.IP(10, 0, 0, 9), sim: sim}
	n.AttachHost(server, nil, nil)
	p := udpPacket(fac, packet.IP(192, 168, 1, 2), server.ip, 64)
	n.FromWLAN(p)
	sim.RunUntil(10 * time.Millisecond)
	if len(server.got) != 1 {
		t.Fatal("packet not forwarded")
	}
	if server.got[0].IPv4().TTL != 63 {
		t.Fatalf("ttl = %d, want 63", server.got[0].IPv4().TTL)
	}
}

func TestTTL1DroppedAtGateway(t *testing.T) {
	// The AcuteMon warm-up packet: TTL=1, dropped at the first hop.
	sim, n, fac := setup(4, DefaultConfig())
	server := &fakeNode{ip: packet.IP(10, 0, 0, 9), sim: sim}
	n.AttachHost(server, nil, nil)
	n.FromWLAN(udpPacket(fac, packet.IP(192, 168, 1, 2), server.ip, 1))
	sim.RunUntil(10 * time.Millisecond)
	if len(server.got) != 0 {
		t.Fatal("TTL=1 packet crossed the gateway")
	}
	if n.Stats.DroppedTTL.Load() != 1 {
		t.Fatalf("dropped = %d", n.Stats.DroppedTTL.Load())
	}
}

func TestWiredToWLANRouting(t *testing.T) {
	sim, n, fac := setup(5, DefaultConfig())
	server := &fakeNode{ip: packet.IP(10, 0, 0, 9), sim: sim}
	send := n.AttachHost(server, nil, nil)
	var toWLAN []*packet.Packet
	n.SetWLAN(func(p *packet.Packet) { toWLAN = append(toWLAN, p) },
		func(ip packet.IPv4Addr) bool { return ip[0] == 192 })
	send(udpPacket(fac, server.ip, packet.IP(192, 168, 1, 2), 64))
	sim.RunUntil(10 * time.Millisecond)
	if len(toWLAN) != 1 {
		t.Fatalf("wlan side got %d packets", len(toWLAN))
	}
	if toWLAN[0].IPv4().TTL != 63 {
		t.Fatalf("downlink ttl = %d, want 63", toWLAN[0].IPv4().TTL)
	}
}

func TestNoRouteDropped(t *testing.T) {
	sim, n, fac := setup(6, DefaultConfig())
	server := &fakeNode{ip: packet.IP(10, 0, 0, 9), sim: sim}
	send := n.AttachHost(server, nil, nil)
	send(udpPacket(fac, server.ip, packet.IP(203, 0, 113, 5), 64))
	sim.RunUntil(10 * time.Millisecond)
	if n.Stats.DroppedNoRoute.Load() != 1 {
		t.Fatalf("no-route drops = %d", n.Stats.DroppedNoRoute.Load())
	}
}

func TestTimeExceededReplyRateLimited(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TimeExceededReply = true
	sim, n, fac := setup(7, cfg)
	var toWLAN []*packet.Packet
	n.SetWLAN(func(p *packet.Packet) { toWLAN = append(toWLAN, p) },
		func(ip packet.IPv4Addr) bool { return ip[0] == 192 })
	// 50 TTL-expired packets within a second: only one ICMP error.
	for i := 0; i < 50; i++ {
		sim.Schedule(time.Duration(i)*20*time.Millisecond, func() {
			n.FromWLAN(udpPacket(fac, packet.IP(192, 168, 1, 2), packet.IP(10, 0, 0, 9), 1))
		})
	}
	sim.RunUntil(990 * time.Millisecond)
	if n.Stats.TimeExceeded.Load() != 1 {
		t.Fatalf("time-exceeded sent %d, want 1 (rate limit)", n.Stats.TimeExceeded.Load())
	}
	if len(toWLAN) != 1 {
		t.Fatalf("wlan got %d errors", len(toWLAN))
	}
	ic := toWLAN[0].ICMP()
	if ic == nil || ic.Type != packet.ICMPTimeExceeded {
		t.Fatal("reply is not ICMP time-exceeded")
	}
	// After the rate-limit window another error may flow.
	sim.RunUntil(3 * time.Second)
	n.FromWLAN(udpPacket(fac, packet.IP(192, 168, 1, 2), packet.IP(10, 0, 0, 9), 1))
	sim.RunUntil(4 * time.Second)
	if n.Stats.TimeExceeded.Load() != 2 {
		t.Fatalf("time-exceeded after window = %d, want 2", n.Stats.TimeExceeded.Load())
	}
}

func TestTimeExceededDisabledByDefault(t *testing.T) {
	sim, n, fac := setup(8, DefaultConfig())
	var toWLAN []*packet.Packet
	n.SetWLAN(func(p *packet.Packet) { toWLAN = append(toWLAN, p) },
		func(ip packet.IPv4Addr) bool { return ip[0] == 192 })
	n.FromWLAN(udpPacket(fac, packet.IP(192, 168, 1, 2), packet.IP(10, 0, 0, 9), 1))
	sim.RunUntil(time.Second)
	if len(toWLAN) != 0 || n.Stats.TimeExceeded.Load() != 0 {
		t.Fatal("time-exceeded sent despite being disabled")
	}
}
