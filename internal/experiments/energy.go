package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/report"
	"repro/internal/testbed"
	"repro/internal/tools"
)

// EnergyRow is one scheme's cost over a fixed 10-second window.
type EnergyRow struct {
	Scheme string
	energy.Report
	// BeyondGateway counts packets that crossed into the wired segment
	// (the paper's "will not burden the remaining part of a network
	// path" claim for the TTL=1 background traffic).
	BeyondGateway uint64
	// MedianRTT is the scheme's measured median (0 for idle).
	MedianRTT time.Duration
}

// ExtensionEnergy quantifies §4.1's battery claim: over an identical
// 10-second window on an 85 ms path, compare (a) an idle phone, (b) an
// AcuteMon campaign (K probes), (c) the naive alternative of pinning the
// phone awake by probing at 10 ms intervals for the same wall time, and
// (d) a 1 s-interval ping that lets the phone sleep but measures
// garbage.
func ExtensionEnergy(opts Options) []EnergyRow {
	opts.fill()
	const window = 10 * time.Second
	const rtt = 85 * time.Millisecond

	build := func(cell int64) *testbed.Testbed {
		return newTB(opts.subSeed(1300+cell), "Google Nexus 5", rtt, func(c *testbed.Config) {
			c.EnergyMetering = true
		})
	}

	finish := func(scheme string, tb *testbed.Testbed, med time.Duration) EnergyRow {
		tb.Sim.RunUntil(window) // settle to the common window end
		return EnergyRow{
			Scheme:        scheme,
			Report:        tb.Energy.Snapshot(),
			BeyondGateway: tb.Wired.Stats.Forwarded.Load(),
			MedianRTT:     med,
		}
	}

	return parMap(opts, 4, func(i int) EnergyRow {
		switch i {
		case 0: // (a) idle baseline: energy-saving mechanisms undisturbed.
			return finish("idle", build(0), 0)
		case 1: // (b) AcuteMon: K probes, BT only while measuring.
			tb := build(1)
			tb.Sim.RunUntil(500 * time.Millisecond)
			res := core.New(tb, core.Config{K: opts.probes()}).Run()
			return finish("acutemon", tb, res.Sample().Median())
		case 2: // (c) 10 ms-interval ping for the same span AcuteMon was
			// active (probes × RTT ≈ probes × 85 ms of wall time).
			tb := build(2)
			tb.Sim.RunUntil(500 * time.Millisecond)
			n := int(time.Duration(opts.probes()) * rtt / (10 * time.Millisecond))
			res := tools.Ping(tb, tools.PingOptions{Count: n, Interval: 10 * time.Millisecond})
			return finish("ping@10ms", tb, res.Sample().Median())
		default: // (d) 1 s-interval ping across the window.
			tb := build(3)
			res := tools.Ping(tb, tools.PingOptions{Count: 9, Interval: time.Second})
			return finish("ping@1s", tb, res.Sample().Median())
		}
	})
}

// RenderEnergy prints the comparison.
func RenderEnergy(rows []EnergyRow) string {
	t := report.NewTable("Extension: energy + network cost over a 10s window (Nexus 5, 85ms path).",
		"scheme", "total mJ", "radio mJ", "awake", "pkts beyond gateway", "median RTT")
	for _, r := range rows {
		med := "-"
		if r.MedianRTT > 0 {
			med = fmt.Sprintf("%.1fms", float64(r.MedianRTT)/1e6)
		}
		t.AddRow(r.Scheme,
			fmt.Sprintf("%.0f", r.TotalMJ()),
			fmt.Sprintf("%.0f", r.RadioMJ),
			r.Awake.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", r.BeyondGateway),
			med)
	}
	return t.String()
}
