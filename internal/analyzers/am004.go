package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AM004 enforces atomic consistency: a variable or struct field whose
// address is ever passed to a sync/atomic function must be accessed
// through sync/atomic everywhere — one plain load next to an atomic
// store is a data race the race detector only catches when the
// schedule cooperates. (The typed atomic.Int64-style wrappers make
// this impossible by construction and are the preferred fix; this
// check exists for the function-style call sites.)
//
// The pass is module-wide: uses are collected across every package
// first, then every plain access to a collected target is reported.
type AM004 struct{}

func (AM004) Code() string { return "AM004" }
func (AM004) Name() string { return "atomic-consistency" }
func (AM004) Doc() string {
	return "a field accessed via sync/atomic anywhere must never be read or written plainly"
}

func (a AM004) Run(m *Module, report func(token.Position, string)) {
	// Phase 1: every &target handed to a sync/atomic call, module-wide.
	// Targets are keyed by a package-path + name + declaration-position
	// string so the same field keys identically whether seen from its
	// defining package or through export data.
	targets := map[string]token.Position{} // key → one atomic call site (for the message)
	inAtomic := map[ast.Node]bool{}        // identifier nodes appearing inside atomic calls
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicCall(pkg.Info, call) {
					return true
				}
				for _, arg := range call.Args {
					ast.Inspect(arg, func(an ast.Node) bool {
						switch an := an.(type) {
						case *ast.SelectorExpr:
							inAtomic[an.Sel] = true
						case *ast.Ident:
							inAtomic[an] = true
						}
						return true
					})
					ue, ok := unparen(arg).(*ast.UnaryExpr)
					if !ok || ue.Op != token.AND {
						continue
					}
					if obj := addressedObj(pkg.Info, unparen(ue.X)); obj != nil {
						if key := objKey(m.Fset, obj); key != "" {
							if _, seen := targets[key]; !seen {
								targets[key] = m.Fset.Position(call.Pos())
							}
						}
					}
				}
				return true
			})
		}
	}
	if len(targets) == 0 {
		return
	}

	// Phase 2: any access to a target outside an atomic call argument.
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			// A selector's Sel ident is visited again as a plain Ident;
			// remember it so each access reports once.
			asSelector := map[*ast.Ident]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				var id *ast.Ident
				var obj types.Object
				switch n := n.(type) {
				case *ast.SelectorExpr:
					id = n.Sel
					asSelector[n.Sel] = true
					if sel, ok := pkg.Info.Selections[n]; ok {
						obj = sel.Obj()
					} else {
						obj = pkg.Info.Uses[n.Sel]
					}
				case *ast.Ident:
					if asSelector[n] {
						return true
					}
					id = n
					obj = pkg.Info.Uses[n]
				default:
					return true
				}
				if obj == nil || inAtomic[id] {
					return true
				}
				key := objKey(m.Fset, obj)
				if key == "" {
					return true
				}
				site, hot := targets[key]
				if !hot {
					return true
				}
				report(m.Fset.Position(id.Pos()), fmt.Sprintf(
					"plain access to %s, which is accessed via sync/atomic at %s:%d; use sync/atomic (or an atomic.Int64-style field) everywhere",
					obj.Name(), trimPath(site.Filename), site.Line))
				return true
			})
		}
	}
}

// isAtomicCall reports whether call invokes a sync/atomic package
// function (the address-taking API, not the typed wrappers).
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObj(info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	// Typed-wrapper methods (atomic.Int64.Add) have receivers; the
	// hazard is only the package-level &x functions.
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return false
		}
	}
	return true
}

// addressedObj resolves the operand of & to a trackable variable: a
// struct field via selection, or a plain (possibly package-level) var.
func addressedObj(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			return sel.Obj()
		}
		return info.Uses[e.Sel]
	case *ast.Ident:
		return info.Uses[e]
	case *ast.IndexExpr:
		// &arr[i] — key the backing variable, best effort.
		return addressedObj(info, unparen(e.X))
	}
	return nil
}

// objKey builds a cross-package-stable identity for a variable: the
// defining position survives the source-check/export-data divide
// because export data records declaration positions.
func objKey(fset *token.FileSet, obj types.Object) string {
	v, ok := obj.(*types.Var)
	if !ok {
		return ""
	}
	pkg := ""
	if v.Pkg() != nil {
		pkg = v.Pkg().Path()
	}
	pos := fset.Position(v.Pos())
	return fmt.Sprintf("%s.%s@%s:%d", pkg, v.Name(), trimPath(pos.Filename), pos.Line)
}

// trimPath keeps the last two path segments so keys and messages stay
// readable and independent of the checkout root.
func trimPath(p string) string {
	parts := strings.Split(p, "/")
	if len(parts) <= 2 {
		return p
	}
	return strings.Join(parts[len(parts)-2:], "/")
}
