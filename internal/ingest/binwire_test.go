package ingest

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/agg"
)

// randomSummary synthesizes one valid summary; about a fifth carry a
// device-built sketch instead of raw RTTs, a fifth carry nothing but
// counters, and the rest ship raw RTTs — the three wire shapes.
func randomSummary(rng *rand.Rand) Summary {
	devices := []string{"Google Nexus 5", "Samsung Grand", "HTC One", "Sony Xperia J", "电话"}
	s := Summary{
		Device:    devices[rng.Intn(len(devices))],
		Sent:      1 + rng.Intn(100),
		TimeMS:    rng.Int63n(2_000_000_000_000),
		LayersOK:  rng.Intn(2) == 0,
		PSMActive: rng.Intn(3) == 0,
	}
	if rng.Intn(2) == 0 {
		s.Chipset = "BCM4339"
	}
	if rng.Intn(2) == 0 {
		s.Group = "group-" + string(rune('a'+rng.Intn(4)))
	}
	if rng.Intn(2) == 0 {
		s.Scenario = "scenario-x"
	}
	s.Lost = rng.Intn(s.Sent + 1)
	s.BackgroundSent = rng.Intn(50)
	if rng.Intn(2) == 0 {
		s.EmulatedRTTNS = rng.Int63n(int64(time.Second))
		s.Inflation = 1 + rng.Float64()*10
	}
	if s.LayersOK {
		s.UserOverheadNS = rng.Int63n(int64(5*time.Millisecond)) - int64(time.Millisecond)
		s.SDIOOverheadNS = rng.Int63n(int64(20 * time.Millisecond))
		s.PSMInflationNS = rng.Int63n(int64(100 * time.Millisecond))
		s.Calibrated = rng.Intn(2) == 0
	}
	switch rng.Intn(5) {
	case 0: // sketch carrier
		sk := agg.NewSketch(0)
		for i := 0; i < s.Sent; i++ {
			sk.AddDuration(time.Duration(rng.Int63n(int64(500 * time.Millisecond))))
		}
		s.Sketch = sk
	case 1: // counters only
	default: // raw RTTs, possibly fewer than sent
		n := 1 + rng.Intn(s.Sent)
		s.RTTs = make([]int64, n)
		base := rng.Int63n(int64(100 * time.Millisecond))
		for i := range s.RTTs {
			v := base + rng.Int63n(int64(10*time.Millisecond)) - int64(5*time.Millisecond)
			if v < 0 {
				v = 0
			}
			s.RTTs[i] = v
		}
	}
	return s
}

// canonJSON reduces a batch to its canonical JSON wire bytes — the
// cross-format equality witness (sketches flush to canonical form when
// JSON-marshalled, nil-vs-empty slices collapse).
func canonJSON(t *testing.T, batch []Summary) string {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeBatch(&buf, batch); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestBinaryBatchRoundTrip is the cross-format equivalence property the
// issue pins: for any valid batch, binary encode→decode and JSON
// encode→decode describe the identical records. Sketch-carrying,
// counters-only, and raw-RTT summaries are all mixed in.
func TestBinaryBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 50; trial++ {
		batch := make([]Summary, 1+rng.Intn(20))
		for i := range batch {
			batch[i] = randomSummary(rng)
		}
		want := canonJSON(t, batch)

		var bin bytes.Buffer
		if err := EncodeBinaryBatch(&bin, batch); err != nil {
			t.Fatal(err)
		}
		decoded, err := DecodeBinaryBatch(bytes.NewReader(bin.Bytes()), 0, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := canonJSON(t, decoded); got != want {
			t.Fatalf("trial %d: binary round trip differs from JSON:\n got %s\nwant %s", trial, got, want)
		}

		// And the JSON path itself round-trips to the same records.
		jdec, err := DecodeBatch(strings.NewReader(want), 0)
		if err != nil {
			t.Fatal(err)
		}
		if got := canonJSON(t, jdec); got != want {
			t.Fatalf("trial %d: JSON round trip not canonical", trial)
		}
	}
}

// TestBinaryBatchDeepEqual pins the decode struct-for-struct on a fixed
// batch (the JSON-bytes witness above can't see fields JSON omits).
func TestBinaryBatchDeepEqual(t *testing.T) {
	sk := agg.NewSketch(0)
	for i := 0; i < 500; i++ {
		sk.AddDuration(time.Duration(i) * time.Millisecond / 7)
	}
	sk.Flush()
	batch := []Summary{
		{Device: "Google Nexus 5", Chipset: "BCM4339", Group: "g", Scenario: "s",
			TimeMS: 123456, Sent: 3, Lost: 1, BackgroundSent: 2,
			EmulatedRTTNS: int64(30 * time.Millisecond), Inflation: 2.5,
			RTTs:     []int64{int64(40 * time.Millisecond), int64(38 * time.Millisecond), int64(41 * time.Millisecond)},
			LayersOK: true, UserOverheadNS: int64(2 * time.Millisecond),
			SDIOOverheadNS: int64(11 * time.Millisecond), PSMInflationNS: -int64(time.Millisecond),
			PSMActive: true, Calibrated: true},
		{Device: "HTC One", Sent: 500, Sketch: sk},
		{Device: "Sony Xperia J", Sent: 1},
	}
	var bin bytes.Buffer
	if err := EncodeBinaryBatch(&bin, batch); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinaryBatch(bytes.NewReader(bin.Bytes()), 10, int64(bin.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(batch) {
		t.Fatalf("decoded %d records, want %d", len(got), len(batch))
	}
	for i := range got {
		// Sketches hold an unexported scratch buffer DeepEqual would trip
		// on; compare them by canonical binary form instead.
		g, w := got[i], batch[i]
		if (g.Sketch == nil) != (w.Sketch == nil) {
			t.Fatalf("record %d: sketch presence mismatch", i)
		}
		if g.Sketch != nil {
			graw, _ := g.Sketch.MarshalBinary()
			wraw, _ := w.Sketch.MarshalBinary()
			if !bytes.Equal(graw, wraw) {
				t.Fatalf("record %d: sketch differs", i)
			}
			g.Sketch, w.Sketch = nil, nil
		}
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, g, w)
		}
	}
}

// TestBinaryBatchTruncation: a frame cut anywhere must be rejected —
// the count is declared up front, so no strict prefix is a valid batch.
func TestBinaryBatchTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	batch := []Summary{randomSummary(rng), randomSummary(rng), randomSummary(rng)}
	var bin bytes.Buffer
	if err := EncodeBinaryBatch(&bin, batch); err != nil {
		t.Fatal(err)
	}
	raw := bin.Bytes()
	for i := 0; i < len(raw); i++ {
		if _, err := DecodeBinaryBatch(bytes.NewReader(raw[:i]), 0, 0); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded cleanly", i, len(raw))
		}
	}
	// Trailing garbage after the declared count is equally torn.
	if _, err := DecodeBinaryBatch(bytes.NewReader(append(append([]byte{}, raw...), 0)), 0, 0); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestBinaryBatchCorruption: random single-byte corruption must either
// error or decode to records that still pass Validate — never panic,
// never yield a poisoned record.
func TestBinaryBatchCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	batch := []Summary{randomSummary(rng), randomSummary(rng)}
	var bin bytes.Buffer
	if err := EncodeBinaryBatch(&bin, batch); err != nil {
		t.Fatal(err)
	}
	orig := bin.Bytes()
	for trial := 0; trial < 2000; trial++ {
		raw := append([]byte{}, orig...)
		raw[rng.Intn(len(raw))] ^= byte(1 + rng.Intn(255))
		decoded, err := DecodeBinaryBatch(bytes.NewReader(raw), 100, int64(len(raw)))
		if err != nil {
			continue
		}
		for i := range decoded {
			if verr := decoded[i].Validate(); verr != nil {
				t.Fatalf("corrupted frame decoded to invalid record: %v", verr)
			}
		}
	}
}

// TestBinaryBatchHostileCaps: declared lengths past their caps are
// refused up front — a hostile frame cannot buy allocations with a
// header it never backs with bytes.
func TestBinaryBatchHostileCaps(t *testing.T) {
	hdr := append(append([]byte{}, binMagic[:]...), binWireVersion)
	uv := func(dst []byte, v uint64) []byte {
		for v >= 0x80 {
			dst = append(dst, byte(v)|0x80)
			v >>= 7
		}
		return append(dst, byte(v))
	}

	// Payload length past MaxBinarySummaryBytes.
	huge := uv(append(append([]byte{}, hdr...), 1), MaxBinarySummaryBytes+1)
	if _, err := DecodeBinaryBatch(bytes.NewReader(huge), 0, 0); err == nil {
		t.Fatal("oversized payload length accepted")
	}
	// Hostile summary count with maxSummaries set.
	many := uv(append([]byte{}, hdr...), 1<<40)
	if _, err := DecodeBinaryBatch(bytes.NewReader(many), 100, 0); err == nil {
		t.Fatal("hostile count accepted")
	}
	// A byte budget caps total consumption even with maxSummaries off.
	var bin bytes.Buffer
	if err := EncodeBinaryBatch(&bin, benchBatch(50, 20)); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBinaryBatch(bytes.NewReader(bin.Bytes()), 0, 64); err == nil {
		t.Fatal("byte budget not enforced")
	}
	// Bad magic and unknown version.
	if _, err := DecodeBinaryBatch(strings.NewReader("NOPE\x01\x01"), 0, 0); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad := append([]byte{}, hdr...)
	bad[4] = 9
	if _, err := DecodeBinaryBatch(bytes.NewReader(append(bad, 1)), 0, 0); err == nil {
		t.Fatal("unknown version accepted")
	}
	// An RTT count the remaining bytes cannot back.
	payload := []byte{flagRTTs, 1, 'X', 0, 0, 0} // device "X", 3 empty keys
	payload = uv(payload, 0)                     // time
	payload = uv(payload, 1<<16)                 // sent
	payload = uv(payload, 0)                     // lost
	payload = uv(payload, 0)                     // background
	payload = uv(payload, 0)                     // emulated
	payload = append(payload, make([]byte, 8)...)
	payload = uv(payload, 1<<16) // rtt count, nothing behind it
	frame := uv(append([]byte{}, hdr...), 1)
	frame = uv(frame, uint64(len(payload)))
	frame = append(frame, payload...)
	if _, err := DecodeBinaryBatch(bytes.NewReader(frame), 0, 0); err == nil {
		t.Fatal("unbacked RTT count accepted")
	}
}

// TestBinarySketchSummaryWire: a sketch-carrying summary survives the
// binary wire into the canonical JSON identical to the JSON wire's.
func TestBinarySketchSummaryWire(t *testing.T) {
	sk := agg.NewSketch(0)
	rng := rand.New(rand.NewSource(74))
	for i := 0; i < 3000; i++ {
		sk.AddDuration(time.Duration(rng.Int63n(int64(2 * time.Second))))
	}
	batch := []Summary{{Device: "Google Nexus 5", Sent: 3000, Sketch: sk}}
	var bin bytes.Buffer
	if err := EncodeBinaryBatch(&bin, batch); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeBinaryBatch(bytes.NewReader(bin.Bytes()), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	json.NewEncoder(&a).Encode(batch[0].Sketch)
	json.NewEncoder(&b).Encode(decoded[0].Sketch)
	if a.String() != b.String() {
		t.Fatal("sketch changed across the binary wire")
	}
	// The binary form is far smaller than the JSON lines equivalent.
	jlen := len(canonJSON(t, batch))
	if bin.Len() >= jlen {
		t.Fatalf("binary sketch frame (%d B) not smaller than JSON (%d B)", bin.Len(), jlen)
	}
}
