// Package am004fix is the AM004 golden fixture: words accessed through
// sync/atomic in one place and plainly in another.
package am004fix

import "sync/atomic"

type counters struct {
	hits  int64
	total int64
}

// Bump publishes both counters atomically.
func (c *counters) Bump() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.total, 1)
}

// Snapshot reads hits plainly: racy against Bump.
func (c *counters) Snapshot() int64 {
	return c.hits // want "AM004: plain access to hits"
}

// Total stays on sync/atomic everywhere: the fixed form.
func (c *counters) Total() int64 {
	return atomic.LoadInt64(&c.total)
}

var dropped int64

// Drop counts atomically.
func Drop() {
	atomic.AddInt64(&dropped, 1)
}

// Dropped reads the counter plainly.
func Dropped() int64 {
	return dropped // want "AM004: plain access to dropped"
}

// DroppedWaived documents a read that is safe by external argument.
func DroppedWaived() int64 {
	return dropped /* wantsup "AM004: plain access to dropped" */ //acutemon:ignore AM004 fixture waiver: read after every writer has joined
}
