package sniffer

import (
	"fmt"
	"io"
	"time"

	"repro/internal/packet"
	"repro/internal/stats"
)

// Analysis is the result of offline capture inspection — the paper's
// §4.2.1 methodology ("our further analysis of the raw pcap files also
// confirms that no PSM activity can be detected when the smartphone
// receives response packets").
type Analysis struct {
	Frames  int
	Beacons int
	// TIMIndications counts beacons whose TIM announced buffered frames.
	TIMIndications int
	// NullPM1/NullPM0 count power-management null frames by PM bit.
	NullPM1 int
	NullPM0 int
	PSPolls int
	// MoreDataFrames counts buffered deliveries flagged MoreData.
	MoreDataFrames int
	Retries        int

	// EchoRTTs are air-level ICMP echo RTTs (request tx → reply rx).
	EchoRTTs stats.Sample
	// ConnectRTTs are air-level TCP SYN→SYN/ACK RTTs.
	ConnectRTTs stats.Sample
}

// PSMActive reports whether the capture shows any power-save activity:
// dozing announcements, PS-Polls, or TIM-buffered traffic.
func (a *Analysis) PSMActive() bool {
	return a.NullPM1 > 0 || a.PSPolls > 0 || a.TIMIndications > 0 || a.MoreDataFrames > 0
}

// String summarises the analysis.
func (a *Analysis) String() string {
	return fmt.Sprintf("analysis{frames=%d beacons=%d tim=%d null(pm1)=%d pspoll=%d echoRTTs=%d connRTTs=%d psm=%v}",
		a.Frames, a.Beacons, a.TIMIndications, a.NullPM1, a.PSPolls,
		len(a.EchoRTTs), len(a.ConnectRTTs), a.PSMActive())
}

type echoKey struct {
	id, seq uint16
}

type synKey struct {
	srcPort, dstPort uint16
	seq              uint32
}

// analyzer incrementally inspects frames in time order.
type analyzer struct {
	out      Analysis
	echoSent map[echoKey]time.Duration
	synSent  map[synKey]time.Duration
}

func newAnalyzer() *analyzer {
	return &analyzer{
		echoSent: make(map[echoKey]time.Duration),
		synSent:  make(map[synKey]time.Duration),
	}
}

func (a *analyzer) frame(p *packet.Packet, ts time.Duration) {
	d11 := p.Dot11()
	if d11 == nil {
		return
	}
	a.out.Frames++
	if d11.Retry {
		a.out.Retries++
	}
	switch {
	case d11.IsBeacon():
		a.out.Beacons++
		if b := p.Beacon(); b != nil && len(b.BufferedAIDs) > 0 {
			a.out.TIMIndications++
		}
		return
	case d11.IsPSPoll():
		a.out.PSPolls++
		return
	case d11.IsNullData():
		if d11.PwrMgmt {
			a.out.NullPM1++
		} else {
			a.out.NullPM0++
		}
		return
	}
	if d11.MoreData {
		a.out.MoreDataFrames++
	}

	if ic := p.ICMP(); ic != nil {
		k := echoKey{ic.ID, ic.Seq}
		switch {
		case ic.IsEchoRequest():
			if _, dup := a.echoSent[k]; !dup {
				a.echoSent[k] = ts
			}
		case ic.IsEchoReply():
			if t0, ok := a.echoSent[k]; ok && ts > t0 {
				a.out.EchoRTTs = append(a.out.EchoRTTs, ts-t0)
				delete(a.echoSent, k)
			}
		}
		return
	}
	if tc := p.TCP(); tc != nil {
		switch {
		case tc.SYN() && !tc.ACK():
			k := synKey{tc.SrcPort, tc.DstPort, tc.Seq}
			if _, dup := a.synSent[k]; !dup {
				a.synSent[k] = ts
			}
		case tc.SYN() && tc.ACK():
			k := synKey{tc.DstPort, tc.SrcPort, tc.Ack - 1}
			if t0, ok := a.synSent[k]; ok && ts > t0 {
				a.out.ConnectRTTs = append(a.out.ConnectRTTs, ts-t0)
				delete(a.synSent, k)
			}
		}
	}
}

// AnalyzeCapture inspects a live sniffer's records directly.
func AnalyzeCapture(s *Sniffer) *Analysis {
	an := newAnalyzer()
	for _, r := range s.Records() {
		an.frame(r.Frame, r.Timestamp())
	}
	out := an.out
	return &out
}

// AnalyzeMerged inspects a merged multi-sniffer capture in time order.
func AnalyzeMerged(m *Merged) *Analysis {
	// Collect and sort by timestamp.
	recs := make([]Record, 0, len(m.byID))
	for _, r := range m.byID {
		recs = append(recs, r)
	}
	for i := 1; i < len(recs); i++ { // insertion sort: captures are near-ordered
		for j := i; j > 0 && recs[j].Timestamp() < recs[j-1].Timestamp(); j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
	an := newAnalyzer()
	for _, r := range recs {
		an.frame(r.Frame, r.Timestamp())
	}
	out := an.out
	return &out
}

// AnalyzePcap parses a pcap stream (as written by Sniffer.WritePcap) and
// analyzes it — the full offline workflow against on-disk captures.
func AnalyzePcap(r io.Reader) (*Analysis, error) {
	linkType, recs, err := packet.ReadPcap(r)
	if err != nil {
		return nil, err
	}
	if linkType != packet.LinkTypeDot11 {
		return nil, fmt.Errorf("sniffer: pcap link type %d, want 802.11 (%d)", linkType, packet.LinkTypeDot11)
	}
	an := newAnalyzer()
	for _, rec := range recs {
		p, err := packet.Decode(rec.Data, packet.LayerTypeDot11, packet.Default)
		if err != nil {
			// Tolerate undecodable frames, as real analyzers do.
			continue
		}
		an.frame(p, rec.Timestamp)
	}
	out := an.out
	return &out, nil
}
