package fleet

import (
	"fmt"
	"math/rand"
	"time"
)

// Params sizes a scenario-built campaign.
type Params struct {
	// Sessions is the total session count.
	Sessions int
	// Seed keys the scenario's own randomness (model draws) and the
	// derived per-session seeds.
	Seed int64
	// Probes is the per-session probe count K (0 → 100).
	Probes int
	// BaseRTT is the emulated path delay for scenarios that don't sweep
	// it (0 → 30 ms).
	BaseRTT time.Duration
}

func (p *Params) fill() {
	if p.Sessions <= 0 {
		p.Sessions = 100
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.BaseRTT == 0 {
		p.BaseRTT = 30 * time.Millisecond
	}
}

// Scenario is a named campaign preset.
type Scenario struct {
	Name        string
	Description string
	// Build generates the session list. Deterministic in Params.
	Build func(p Params) []Session
}

// deviceMix approximates a deployed-fleet census over the paper's
// Table 1 inventory: a few dominant models and a long-ish tail.
var deviceMix = []struct {
	model  string
	weight int
}{
	{"Google Nexus 5", 35},
	{"Samsung Grand", 25},
	{"Google Nexus 4", 20},
	{"Sony Xperia J", 12},
	{"HTC One", 8},
}

// Scenarios lists the built-in presets.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:        "baseline",
			Description: "homogeneous Nexus 5 fleet on the default 30 ms path",
			Build: func(p Params) []Session {
				p.fill()
				out := make([]Session, p.Sessions)
				for i := range out {
					out[i] = Session{Phone: "Google Nexus 5", EmulatedRTT: p.BaseRTT, Probes: p.Probes}
				}
				return out
			},
		},
		{
			Name:        "device-mix",
			Description: "weighted five-model census (MopEye-style opportunistic fleet), grouped by model",
			Build: func(p Params) []Session {
				p.fill()
				total := 0
				for _, d := range deviceMix {
					total += d.weight
				}
				rng := rand.New(rand.NewSource(SeedFor(p.Seed, -1)))
				out := make([]Session, p.Sessions)
				for i := range out {
					pick := rng.Intn(total)
					model := deviceMix[len(deviceMix)-1].model
					for _, d := range deviceMix {
						if pick < d.weight {
							model = d.model
							break
						}
						pick -= d.weight
					}
					out[i] = Session{Phone: model, EmulatedRTT: p.BaseRTT, Probes: p.Probes}
				}
				return out
			},
		},
		{
			Name:        "cross-traffic",
			Description: "idle vs. iPerf-loaded cells in equal halves (§4.3 at fleet scale)",
			Build: func(p Params) []Session {
				p.fill()
				out := make([]Session, p.Sessions)
				for i := range out {
					loaded := i%2 == 1
					label := "idle-cell"
					if loaded {
						label = "loaded-cell"
					}
					out[i] = Session{
						Phone:        "Google Nexus 5",
						Label:        label,
						EmulatedRTT:  p.BaseRTT,
						Probes:       p.Probes,
						CrossTraffic: loaded,
					}
				}
				return out
			},
		},
		{
			Name:        "psm-sweep",
			Description: "PSM demotion timer (Tip) sweep 40→200 ms on the Nexus 5",
			Build: func(p Params) []Session {
				p.fill()
				timers := []time.Duration{
					40 * time.Millisecond, 80 * time.Millisecond, 120 * time.Millisecond,
					160 * time.Millisecond, 200 * time.Millisecond,
				}
				out := make([]Session, p.Sessions)
				for i := range out {
					tip := timers[i%len(timers)]
					out[i] = Session{
						Phone:       "Google Nexus 5",
						Label:       fmt.Sprintf("tip=%dms", tip/time.Millisecond),
						EmulatedRTT: p.BaseRTT,
						Probes:      p.Probes,
						PSMTimeout:  tip,
					}
				}
				return out
			},
		},
		{
			Name:        "tool-mix",
			Description: "all five probing schemes over identical rigs in one report (§4.3 as one campaign)",
			Build: func(p Params) []Session {
				p.fill()
				methods := []string{"acutemon", "ping", "httping", "javaping", "ping2"}
				out := make([]Session, p.Sessions)
				for i := range out {
					m := methods[i%len(methods)]
					out[i] = Session{
						Phone:       "Google Nexus 5",
						Label:       m,
						Method:      m,
						EmulatedRTT: p.BaseRTT,
						Probes:      p.Probes,
						// 100 ms pacing keeps a five-tool campaign's
						// virtual time manageable while still letting
						// the phone doze between probes (Tip ≈ 40-75 ms
						// across Table 1), so the inflation contrast
						// against acutemon survives.
						Interval: 100 * time.Millisecond,
					}
				}
				return out
			},
		},
		{
			Name:        "wifi-vs-cellular",
			Description: "AcuteMon on the WiFi rig vs the UMTS and LTE RRC testbeds in one report",
			Build: func(p Params) []Session {
				p.fill()
				out := make([]Session, p.Sessions)
				for i := range out {
					s := Session{
						Phone:       "Google Nexus 5",
						EmulatedRTT: p.BaseRTT,
						Probes:      p.Probes,
					}
					switch i % 3 {
					case 0:
						s.Label = "wifi"
					case 1:
						s.Label = "cellular-umts"
						s.Backend, s.Radio = "cellular", "umts"
					default:
						s.Label = "cellular-lte"
						s.Backend, s.Radio = "cellular", "lte"
					}
					out[i] = s
				}
				return out
			},
		},
		{
			Name:        "rtt-sweep",
			Description: "Table 5 emulated-path sweep (20/50/85/135 ms) across the device mix",
			Build: func(p Params) []Session {
				p.fill()
				rtts := []time.Duration{
					20 * time.Millisecond, 50 * time.Millisecond,
					85 * time.Millisecond, 135 * time.Millisecond,
				}
				rng := rand.New(rand.NewSource(SeedFor(p.Seed, -2)))
				out := make([]Session, p.Sessions)
				for i := range out {
					rtt := rtts[i%len(rtts)]
					model := deviceMix[rng.Intn(len(deviceMix))].model
					out[i] = Session{
						Phone:       model,
						Label:       fmt.Sprintf("rtt=%dms", rtt/time.Millisecond),
						EmulatedRTT: rtt,
						Probes:      p.Probes,
					}
				}
				return out
			},
		},
	}
}

// ScenarioByName resolves a preset.
func ScenarioByName(name string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}
