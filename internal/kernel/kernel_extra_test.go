package kernel

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/packet"
)

func TestCloseListenerCausesRST(t *testing.T) {
	sim, a, b := pair(20)
	b.Listen(80)
	b.CloseListener(80)
	conn := a.Dial(b.IP(), 80)
	var rst bool
	conn.OnReset = func(at time.Duration, p *packet.Packet) { rst = true }
	sim.RunUntil(100 * time.Millisecond)
	if !rst {
		t.Fatal("SYN to closed listener did not draw RST")
	}
}

func TestPersistentConnectionMultipleExchanges(t *testing.T) {
	sim, a, b := pair(21)
	l := b.Listen(80)
	served := 0
	l.OnConn = func(c *TCPConn) {
		c.OnData = func(payload []byte, at time.Duration, p *packet.Packet) {
			served++
			c.Send([]byte("resp"))
		}
	}
	conn := a.Dial(b.IP(), 80)
	got := 0
	conn.OnData = func(payload []byte, at time.Duration, p *packet.Packet) {
		got++
		if got < 5 {
			conn.Send([]byte("req"))
		}
	}
	conn.OnConnected = func(at time.Duration, p *packet.Packet) { conn.Send([]byte("req")) }
	sim.RunUntil(time.Second)
	if served != 5 || got != 5 {
		t.Fatalf("served=%d got=%d, want 5 request/response rounds", served, got)
	}
}

func TestSequenceNumbersAdvance(t *testing.T) {
	sim, a, b := pair(22)
	l := b.Listen(80)
	var seqs []uint32
	l.OnConn = func(c *TCPConn) {
		c.OnData = func(payload []byte, at time.Duration, p *packet.Packet) {
			seqs = append(seqs, p.TCP().Seq)
			c.Send([]byte("k"))
		}
	}
	conn := a.Dial(b.IP(), 80)
	sentRounds := 0
	send := func() { conn.Send(bytes.Repeat([]byte("x"), 100)) }
	conn.OnConnected = func(time.Duration, *packet.Packet) { send() }
	conn.OnData = func([]byte, time.Duration, *packet.Packet) {
		sentRounds++
		if sentRounds < 3 {
			send()
		}
	}
	sim.RunUntil(time.Second)
	if len(seqs) != 3 {
		t.Fatalf("segments = %d", len(seqs))
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+100 {
			t.Fatalf("seq did not advance by payload: %v", seqs)
		}
	}
}

func TestICMPHandlerUnregister(t *testing.T) {
	sim, a, b := pair(23)
	hits := 0
	a.OnICMP(9, func(*packet.ICMP, *packet.Packet, time.Duration) { hits++ })
	a.SendEcho(b.IP(), 9, 0, 8)
	sim.RunUntil(100 * time.Millisecond)
	a.CloseICMP(9)
	a.SendEcho(b.IP(), 9, 1, 8)
	sim.RunUntil(200 * time.Millisecond)
	if hits != 1 {
		t.Fatalf("handler hits = %d, want 1 (unregistered before second)", hits)
	}
}

func TestEphemeralPortsDoNotCollide(t *testing.T) {
	_, a, _ := pair(24)
	seen := map[uint16]bool{}
	for i := 0; i < 500; i++ {
		s, err := a.OpenUDP(0)
		if err != nil {
			t.Fatal(err)
		}
		if seen[s.Port()] {
			t.Fatalf("ephemeral port %d reused while open", s.Port())
		}
		seen[s.Port()] = true
	}
}

// Property: UDP payloads of arbitrary content survive the stack
// end-to-end.
func TestQuickUDPPayloadIntegrity(t *testing.T) {
	f := func(payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		sim, a, b := pair(25)
		srv, err := b.OpenUDP(7)
		if err != nil {
			return false
		}
		var got []byte
		srv.SetRecv(func(p []byte, _ packet.IPv4Addr, _ uint16, _ *packet.Packet, _ time.Duration) {
			got = p
		})
		cli, err := a.OpenUDP(0)
		if err != nil {
			return false
		}
		cli.SendTo(b.IP(), 7, payload, 0)
		sim.RunUntil(50 * time.Millisecond)
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
