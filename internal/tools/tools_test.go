package tools

import (
	"testing"
	"time"

	"repro/internal/android"
	"repro/internal/stats"
	"repro/internal/testbed"
)

func newTB(seed int64, phone string, rtt time.Duration) *testbed.Testbed {
	cfg := testbed.DefaultConfig()
	cfg.Seed = seed
	if phone != "" {
		p, ok := android.ProfileByName(phone)
		if !ok {
			panic("unknown phone " + phone)
		}
		cfg.Phone = p
	}
	cfg.EmulatedRTT = rtt
	return testbed.New(cfg)
}

func TestPingFastInterval(t *testing.T) {
	tb := newTB(1, "", 30*time.Millisecond)
	res := Ping(tb, PingOptions{Count: 50, Interval: 10 * time.Millisecond})
	if res.Sent != 50 {
		t.Fatalf("sent = %d", res.Sent)
	}
	s := res.Sample()
	if len(s) < 45 {
		t.Fatalf("completed %d/50", len(s))
	}
	m := stats.Millis(s.Mean())
	if m < 31 || m > 36 {
		t.Errorf("ping mean @10ms = %.2f, want ≈33ms (Table 2)", m)
	}
}

func TestPingSlowIntervalInflated(t *testing.T) {
	tb := newTB(2, "", 30*time.Millisecond)
	res := Ping(tb, PingOptions{Count: 40, Interval: time.Second})
	s := res.Sample()
	m := stats.Millis(s.Mean())
	// Nexus 5 @30ms/1s: du ≈ 43ms (Table 2).
	if m < 38 || m > 48 {
		t.Errorf("ping mean @1s = %.2f, want ≈43ms", m)
	}
}

func TestPingIntegerTruncationQuirk(t *testing.T) {
	// With a long emulated path every reported RTT exceeds 100ms and
	// must come back as whole milliseconds.
	tb := newTB(3, "", 120*time.Millisecond)
	res := Ping(tb, PingOptions{Count: 20, Interval: 50 * time.Millisecond})
	s := res.Sample()
	if len(s) < 15 {
		t.Fatalf("completed %d", len(s))
	}
	for _, v := range s {
		if v%time.Millisecond != 0 {
			t.Fatalf("reported RTT %v not integer-ms despite >100ms", v)
		}
	}
	// And the quirk can push the user RTT below the kernel RTT
	// (negative Δdu−k), as Fig 3(b)/(d) shows.
	duk, _ := Overheads(tb, *res)
	if len(duk) == 0 {
		t.Fatal("no Δdu−k samples")
	}
	neg := 0
	for _, d := range duk {
		if d < 0 {
			neg++
		}
	}
	if neg == 0 {
		t.Error("integer truncation never produced a negative Δdu−k")
	}
}

func TestHTTPing(t *testing.T) {
	tb := newTB(4, "", 30*time.Millisecond)
	res := HTTPing(tb, HTTPingOptions{Count: 30, Interval: 200 * time.Millisecond})
	s := res.Sample()
	if len(s) < 25 {
		t.Fatalf("completed %d/30", len(s))
	}
	m := stats.Millis(s.Mean())
	// One GET round trip on a 30ms path, paying wake costs at 200ms
	// intervals (bus asleep: +SDIO wake).
	if m < 31 || m > 55 {
		t.Errorf("httping mean = %.2fms", m)
	}
	if tb.Server.HTTPRequests.Load() < 25 {
		t.Errorf("server served %d requests", tb.Server.HTTPRequests.Load())
	}
}

func TestJavaPingSlowerThanNativePing(t *testing.T) {
	ping := func() float64 {
		tb := newTB(5, "", 30*time.Millisecond)
		res := Ping(tb, PingOptions{Count: 40, Interval: time.Second})
		return stats.Millis(res.Sample().Mean())
	}()
	jping := func() float64 {
		tb := newTB(5, "", 30*time.Millisecond)
		res := JavaPing(tb, JavaPingOptions{Count: 40, Interval: time.Second})
		return stats.Millis(res.Sample().Mean())
	}()
	if jping <= ping {
		t.Errorf("java ping (%.2fms) should exceed native ping (%.2fms): DVM overhead", jping, ping)
	}
}

func TestJavaPingGetsRSTs(t *testing.T) {
	tb := newTB(6, "", 20*time.Millisecond)
	res := JavaPing(tb, JavaPingOptions{Count: 20, Interval: 100 * time.Millisecond})
	if len(res.Sample()) < 17 {
		t.Fatalf("completed %d/20 SYN-RST probes", len(res.Sample()))
	}
}

func TestPing2ShortPathAccurate(t *testing.T) {
	// ping2's claim: for short nRTT the second ping finds the phone
	// still awake, so its RTT is close to the network value.
	tb := newTB(7, "", 20*time.Millisecond)
	tb.Sim.RunUntil(500 * time.Millisecond) // let the phone doze first
	res := Ping2(tb, Ping2Options{Rounds: 40, Gap: time.Second})
	s := res.Sample()
	if len(s) < 30 {
		t.Fatalf("completed %d rounds", len(s))
	}
	med := stats.Millis(s.Median())
	if med < 19 || med > 28 {
		t.Errorf("ping2 median on 20ms path = %.2fms, want ≈21-25ms", med)
	}
}

func TestPing2LongPathStillInflated(t *testing.T) {
	// The paper's criticism: when nRTT exceeds the demotion timers the
	// device is asleep again by the time the second ping arrives.
	short := func() float64 {
		tb := newTB(8, "Google Nexus 4", 20*time.Millisecond)
		tb.Sim.RunUntil(500 * time.Millisecond)
		res := Ping2(tb, Ping2Options{Rounds: 30, Gap: time.Second})
		return stats.Millis(res.Sample().Median()) - 20
	}()
	long := func() float64 {
		tb := newTB(8, "Google Nexus 4", 80*time.Millisecond) // > Tip=40ms
		tb.Sim.RunUntil(500 * time.Millisecond)
		res := Ping2(tb, Ping2Options{Rounds: 30, Gap: time.Second})
		return stats.Millis(res.Sample().Median()) - 80
	}()
	if long <= short+5 {
		t.Errorf("ping2 inflation: short-path %+.2fms, long-path %+.2fms — long should be much worse", short, long)
	}
}

func TestLayerSamplesConsistent(t *testing.T) {
	tb := newTB(9, "", 30*time.Millisecond)
	res := Ping(tb, PingOptions{Count: 30, Interval: 20 * time.Millisecond})
	du, dk, dn := LayerSamples(tb, *res)
	if len(du) == 0 || len(dk) == 0 || len(dn) == 0 {
		t.Fatalf("layer samples missing: du=%d dk=%d dn=%d", len(du), len(dk), len(dn))
	}
	if du.Mean() < dk.Mean() || dk.Mean() < dn.Mean() {
		t.Errorf("layer ordering violated: du=%v dk=%v dn=%v", du.Mean(), dk.Mean(), dn.Mean())
	}
}

func TestToolsDontLeakAcrossRuns(t *testing.T) {
	tb := newTB(10, "", 20*time.Millisecond)
	a := Ping(tb, PingOptions{Count: 10, Interval: 10 * time.Millisecond, ID: 0x1})
	b := Ping(tb, PingOptions{Count: 10, Interval: 10 * time.Millisecond, ID: 0x2})
	if len(a.Sample()) < 8 || len(b.Sample()) < 8 {
		t.Fatalf("sequential runs interfered: %d, %d", len(a.Sample()), len(b.Sample()))
	}
}

func TestHTTPingConnectOnly(t *testing.T) {
	tb := newTB(40, "", 30*time.Millisecond)
	res := HTTPing(tb, HTTPingOptions{Count: 20, Interval: 100 * time.Millisecond, ConnectOnly: true})
	s := res.Sample()
	if len(s) < 18 {
		t.Fatalf("completed %d/20", len(s))
	}
	m := stats.Millis(s.Mean())
	// One SYN/SYN-ACK round trip on a 30ms path plus wake costs at a
	// 100ms interval (bus asleep for each probe).
	if m < 30 || m > 50 {
		t.Errorf("connect-only mean = %.2fms", m)
	}
	if res.Tool != "httping -r" {
		t.Errorf("tool label = %q", res.Tool)
	}
}

func TestJavaHTTPPingMatchesJavaPingShape(t *testing.T) {
	// MobiPerf methods 2 and 3 are "very similar" (§4.3): both time a
	// TCP control exchange from the DVM, so their medians should sit
	// within a couple of ms of each other.
	tbA := newTB(41, "", 30*time.Millisecond)
	m2 := JavaPing(tbA, JavaPingOptions{Count: 40, Interval: time.Second})
	tbB := newTB(41, "", 30*time.Millisecond)
	m3 := JavaHTTPPing(tbB, JavaHTTPPingOptions{Count: 40, Interval: time.Second})
	a := stats.Millis(m2.Sample().Median())
	b := stats.Millis(m3.Sample().Median())
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	if diff > 3 {
		t.Errorf("SYN/RST (%.2fms) vs SYN/SYN-ACK (%.2fms) differ by %.2fms, want < 3", a, b, diff)
	}
	if len(m3.Sample()) < 36 {
		t.Fatalf("java http ping completed %d/40", len(m3.Sample()))
	}
}
