package fleet

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/agg"
	"repro/internal/report"
	"repro/internal/stats"
)

// Moments and Hist were born here and now live in internal/agg so the
// ingest service folds with the same implementation the campaign
// scheduler merges with. The aliases keep every existing fleet caller
// compiling unchanged.
type (
	// Moments is a mergeable streaming accumulator for count, mean,
	// variance, min, and max. See agg.Moments.
	Moments = agg.Moments
	// Hist is a mergeable fixed-range histogram over durations. See
	// agg.Hist.
	Hist = agg.Hist
	// Sketch is a mergeable t-digest-style quantile sketch. See
	// agg.Sketch.
	Sketch = agg.Sketch
)

// NewHist builds a histogram with the given geometry.
func NewHist(lo, hi time.Duration, bins int) *Hist { return agg.NewHist(lo, hi, bins) }

func newDuHist() *Hist { return agg.NewDurationHist() }

// GroupAggregate is the campaign-level fold of every session sharing one
// scenario label. All fields merge exactly (counts, histogram), stably
// (moments), or within a documented quantile error bound (sketch), so
// per-worker aggregates combine into the same report regardless of how
// sessions were scheduled.
type GroupAggregate struct {
	Label    string `json:"label"`
	Sessions int64  `json:"sessions"`
	// Errors counts sessions that failed to run at all.
	Errors int64 `json:"errors,omitempty"`

	// Probe accounting across the group.
	ProbesSent     int64 `json:"probes_sent"`
	ProbesLost     int64 `json:"probes_lost"`
	BackgroundSent int64 `json:"background_sent"`

	// Du folds every user-level RTT observation (ns) of the group.
	// DuSketch backs the campaign delay-distribution quantiles —
	// unclamped and tail-accurate where the fixed-range DuHist saturates
	// every observation ≥ 500 ms into Over; DuHist stays for
	// fixed-resolution CDF/table rendering and replay.
	Du       Moments `json:"du"`
	DuHist   *Hist   `json:"du_hist"`
	DuSketch *Sketch `json:"du_sketch,omitempty"`

	// Inflation folds per-session inflation factors
	// (mean du ÷ emulated path RTT; dimensionless).
	Inflation Moments `json:"inflation"`

	// UserOverhead / SDIOOverhead fold per-session mean Δdu−k and Δdk−n
	// (ns): the paper's user-space and host-bus attribution.
	UserOverhead Moments `json:"user_overhead"`
	SDIOOverhead Moments `json:"sdio_overhead"`
	// PSMInflation folds per-session mean(dn) − emulated RTT (ns): delay
	// added on the air path itself, the PSM/AP-buffering share.
	PSMInflation Moments `json:"psm_inflation"`

	// PSMActiveSessions counts sessions whose capture showed power-save
	// activity; CalibratedSessions counts sessions that measured with
	// registry-supplied dpre/db.
	PSMActiveSessions  int64 `json:"psm_active_sessions"`
	CalibratedSessions int64 `json:"calibrated_sessions"`
}

func newGroupAggregate(label string) *GroupAggregate {
	return &GroupAggregate{Label: label, DuHist: newDuHist(), DuSketch: agg.NewSketch(0)}
}

// fold absorbs one finished session. sample carries the raw user RTTs;
// it is dropped after this call, keeping memory O(groups), not
// O(sessions × probes).
func (g *GroupAggregate) fold(r *SessionResult, sample stats.Sample) {
	g.Sessions++
	if r.Err != nil {
		g.Errors++
		return
	}
	g.ProbesSent += int64(r.Sent)
	g.ProbesLost += int64(r.Lost)
	g.BackgroundSent += int64(r.BackgroundSent)
	for _, v := range sample {
		g.Du.Add(float64(v))
		g.DuHist.Add(v)
		g.DuSketch.AddDuration(v)
	}
	if r.Inflation > 0 {
		g.Inflation.Add(r.Inflation)
	}
	if r.LayersOK {
		g.UserOverhead.Add(float64(r.UserOverhead))
		g.SDIOOverhead.Add(float64(r.SDIOOverhead))
		g.PSMInflation.Add(float64(r.PSMInflation))
	}
	if r.PSMActive {
		g.PSMActiveSessions++
	}
	if r.CalibratedConfig {
		g.CalibratedSessions++
	}
}

// Merge folds another group's aggregate in. On error (histogram
// geometry mismatch) the receiver is unchanged.
func (g *GroupAggregate) Merge(o *GroupAggregate) error {
	if o == nil {
		return nil
	}
	// Geometry is the only fallible step; check it before mutating any
	// field so a failed merge cannot leave sketch/moments including data
	// the histogram rejected.
	if err := g.DuHist.CheckGeometry(o.DuHist); err != nil {
		return err
	}
	g.Sessions += o.Sessions
	g.Errors += o.Errors
	g.ProbesSent += o.ProbesSent
	g.ProbesLost += o.ProbesLost
	g.BackgroundSent += o.BackgroundSent
	// Coverage-aware: merging with a pre-sketch record drops the sketch
	// (capture the fold counts before the moments merge below).
	agg.MergeSketches(&g.DuSketch, g.Du.N, o.DuSketch, o.Du.N)
	g.Du.Merge(o.Du)
	if err := g.DuHist.Merge(o.DuHist); err != nil {
		return err
	}
	g.Inflation.Merge(o.Inflation)
	g.UserOverhead.Merge(o.UserOverhead)
	g.SDIOOverhead.Merge(o.SDIOOverhead)
	g.PSMInflation.Merge(o.PSMInflation)
	g.PSMActiveSessions += o.PSMActiveSessions
	g.CalibratedSessions += o.CalibratedSessions
	return nil
}

// DuQuantile returns the q-th (0..1) quantile of the group's
// user-level RTT distribution: from the sketch when it covers every
// folded observation, falling back to the 0.5 ms-binned, 500 ms-capped
// histogram for reports recorded (or merged with ones recorded) before
// sketches existed.
func (g *GroupAggregate) DuQuantile(q float64) time.Duration {
	if g.DuSketch != nil && g.DuSketch.Count > 0 && g.DuSketch.Count == g.Du.N {
		return g.DuSketch.QuantileDuration(q)
	}
	if g.DuHist != nil {
		return g.DuHist.Quantile(q)
	}
	return 0
}

// LossRate returns the fraction of probes lost.
func (g *GroupAggregate) LossRate() float64 {
	if g.ProbesSent == 0 {
		return 0
	}
	return float64(g.ProbesLost) / float64(g.ProbesSent)
}

// Report is the result of a campaign run. It marshals to JSON as a
// machine-readable campaign record (cmd/acutemon-fleet -json) that the
// ingest load generator can replay and CI can trend-track.
type Report struct {
	Name     string `json:"name"`
	Scenario string `json:"scenario"`
	Workers  int    `json:"workers"`
	Sessions int64  `json:"sessions"`
	Errors   int64  `json:"errors"`
	// Wall is the measured wall-clock of the whole campaign.
	Wall time.Duration `json:"wall_ns"`
	// Interrupted reports that the campaign context was cancelled before
	// every session was dispatched; the report covers the sessions that
	// did finish.
	Interrupted bool `json:"interrupted,omitempty"`
	// Groups are the per-label aggregates, sorted by label.
	Groups []*GroupAggregate `json:"groups"`
	// FirstErrors records up to a handful of session error strings for
	// diagnosis.
	FirstErrors []string `json:"first_errors,omitempty"`
	// CalibratedModels lists the models the auto-calibration pre-pass
	// trained and recorded, sorted.
	CalibratedModels []string `json:"calibrated_models,omitempty"`
}

// Group finds a group by label.
func (r *Report) Group(label string) *GroupAggregate {
	for _, g := range r.Groups {
		if g.Label == label {
			return g
		}
	}
	return nil
}

// mergeGroups combines per-worker aggregate maps into the report's
// sorted group list.
func (r *Report) mergeGroups(locals []map[string]*GroupAggregate) error {
	merged := map[string]*GroupAggregate{}
	for _, local := range locals {
		for label, g := range local {
			dst, ok := merged[label]
			if !ok {
				dst = newGroupAggregate(label)
				merged[label] = dst
			}
			if err := dst.Merge(g); err != nil {
				return err
			}
		}
	}
	labels := make([]string, 0, len(merged))
	for l := range merged {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	r.Groups = r.Groups[:0]
	for _, l := range labels {
		g := merged[l]
		r.Groups = append(r.Groups, g)
		r.Sessions += g.Sessions
		r.Errors += g.Errors
	}
	return nil
}

// Render prints the campaign report as a table plus a header line, in
// the repo's report idiom.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign %q (scenario %s): %d sessions, %d workers, %v wall",
		r.Name, r.Scenario, r.Sessions, r.Workers, r.Wall.Round(time.Millisecond))
	if r.Wall > 0 {
		fmt.Fprintf(&b, " (%.0f sessions/s)", float64(r.Sessions)/r.Wall.Seconds())
	}
	b.WriteByte('\n')
	if r.Interrupted {
		b.WriteString("campaign interrupted: partial report over finished sessions\n")
	}
	if len(r.CalibratedModels) > 0 {
		fmt.Fprintf(&b, "auto-calibrated %d model(s): %s\n",
			len(r.CalibratedModels), strings.Join(r.CalibratedModels, ", "))
	}
	if r.Errors > 0 {
		fmt.Fprintf(&b, "errors: %d session(s) failed\n", r.Errors)
	}
	for _, e := range r.FirstErrors {
		fmt.Fprintf(&b, "  error: %s\n", e)
	}
	t := report.NewTable("Per-group campaign aggregates (durations in ms).",
		"Group", "Sessions", "Probes", "Loss", "du mean±sd", "p50", "p90", "p99",
		"Inflation", "Δdu−k", "Δdk−n", "PSM infl.", "PSM act.")
	ms := func(f float64) string { return fmt.Sprintf("%.2f", f/float64(time.Millisecond)) }
	for _, g := range r.Groups {
		t.AddRow(g.Label,
			fmt.Sprintf("%d", g.Sessions),
			fmt.Sprintf("%d", g.ProbesSent),
			fmt.Sprintf("%.1f%%", g.LossRate()*100),
			fmt.Sprintf("%s±%s", ms(g.Du.Mean), ms(g.Du.Stddev())),
			ms(float64(g.DuQuantile(0.50))),
			ms(float64(g.DuQuantile(0.90))),
			ms(float64(g.DuQuantile(0.99))),
			fmt.Sprintf("%.2f×", g.Inflation.Mean),
			ms(g.UserOverhead.Mean),
			ms(g.SDIOOverhead.Mean),
			ms(g.PSMInflation.Mean),
			fmt.Sprintf("%d/%d", g.PSMActiveSessions, g.Sessions))
	}
	b.WriteString(t.String())
	return b.String()
}
