package fleet

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// SeedFor derives a deterministic per-unit seed from a base seed and a
// unit index via a splitmix64 finalizer, so sibling units (sessions,
// cells, workers) get decorrelated RNG streams while the whole campaign
// stays reproducible from one number. The result is always positive.
func SeedFor(base int64, id int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(int64(id)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e9b5
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	seed := int64(z & 0x7fffffffffffffff)
	if seed == 0 {
		seed = 1
	}
	return seed
}

// Map runs f(0..n-1) on a bounded worker pool and returns the results in
// index order. Each index is processed exactly once, so as long as f(i)
// depends only on i (the repo-wide convention: every experiment cell
// builds its own seeded testbed), the output is identical for any worker
// count. workers <= 0 selects GOMAXPROCS.
//
//acutemon:ignore AM005 CPU-bound fan-out over in-process closures; it returns as soon as f does, so cancellation belongs inside f
func Map[T any](workers, n int, f func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		for i := range out {
			out[i] = f(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = f(i)
			}
		}()
	}
	wg.Wait()
	return out
}
