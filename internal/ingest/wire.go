// Package ingest is the crowd-scale collection half of the repository:
// a service that accepts per-session measurement summaries from many
// phones at once, *punctures* every reported RTT online (de-inflates it
// by subtracting the calibrated user-space, host-bus, and PSM
// overheads the paper attributes in §3), and folds raw and corrected
// observations side by side into a lock-striped, time-windowed store of
// mergeable aggregates served over HTTP.
//
// The fleet package simulates the million phones; ingest is the server
// they report to. A load-generator mode wires fleet.Run sessions
// through the real wire protocol, so a seeded campaign streamed over
// loopback reproduces the offline campaign report exactly — the
// end-to-end determinism check that keeps both halves honest.
package ingest

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/agg"
)

// Summary is the wire record one device posts per finished measurement
// session: identification, the raw per-probe user-level RTTs, and the
// device's own layer attribution when it could extract one. The
// encoding is JSON lines — one object per line, batched per POST — the
// format crowdsourced collectors (MopEye-style) ship.
type Summary struct {
	// Device is the phone model (Table 1 name); required.
	Device string `json:"device"`
	// Chipset optionally names the device's WiFi chipset family. When
	// the model itself is unknown to the knowledge store, the family
	// aggregate learned from chipset siblings corrects the session (the
	// resolution ladder's third rung).
	Chipset string `json:"chipset,omitempty"`
	// Group is the aggregation label; "" defaults to Device.
	Group string `json:"group,omitempty"`
	// Scenario names the campaign or deployment arm the session ran in.
	Scenario string `json:"scenario,omitempty"`
	// TimeMS is the session's event time (Unix ms); 0 lets the server
	// stamp arrival time.
	TimeMS int64 `json:"time_ms,omitempty"`

	// RTTs are the raw user-level per-probe RTT observations (ns).
	RTTs []int64 `json:"rtts_ns"`
	// Sketch optionally carries a device-built quantile sketch of the
	// session's user-level RTTs (ns) instead of the raw observations —
	// the record a long-running or bandwidth-constrained collector ships
	// when retaining every probe is not affordable. Mutually exclusive
	// with RTTs; the server merges it into the cell's raw sketch and
	// shifts a punctured copy by the session's correction.
	Sketch *agg.Sketch `json:"sketch,omitempty"`
	// Sent / Lost account for all probes, including unanswered ones.
	Sent int `json:"sent"`
	Lost int `json:"lost"`
	// BackgroundSent counts the TTL=1 wake-keeping packets.
	BackgroundSent int `json:"background_sent,omitempty"`

	// EmulatedRTTNS is the known path RTT for testbed sessions (0 in the
	// wild); Inflation is mean(du) ÷ path RTT when known.
	EmulatedRTTNS int64   `json:"emulated_rtt_ns,omitempty"`
	Inflation     float64 `json:"inflation,omitempty"`

	// LayersOK reports the device extracted per-layer attribution; the
	// three overheads below are its session means (ns).
	LayersOK       bool  `json:"layers_ok,omitempty"`
	UserOverheadNS int64 `json:"user_overhead_ns,omitempty"`
	SDIOOverheadNS int64 `json:"sdio_overhead_ns,omitempty"`
	PSMInflationNS int64 `json:"psm_inflation_ns,omitempty"`

	// PSMActive reports power-save activity during the session.
	PSMActive bool `json:"psm_active,omitempty"`
	// Calibrated reports the device measured with registry-supplied
	// dpre/db (an AcuteMon-style punctured measurement at the source).
	Calibrated bool `json:"calibrated,omitempty"`
}

// GroupLabel returns the aggregation label, defaulting to the device
// model like fleet sessions do.
func (s *Summary) GroupLabel() string {
	if s.Group != "" {
		return s.Group
	}
	return s.Device
}

// Wire sanity caps; a single phone session never legitimately exceeds
// them, so anything larger is a malformed or hostile batch. Key strings
// are bounded because every distinct (device, group, scenario) mints a
// store cell — unbounded names would let one client mint unbounded
// aggregation state.
const (
	maxRTTsPerSummary  = 1 << 16
	maxCountPerSummary = 1 << 20
	maxRTTNS           = int64(10 * time.Minute)
	maxKeyLen          = 200
)

// Validate rejects records that would poison the aggregates.
func (s *Summary) Validate() error {
	if s.Device == "" {
		return errors.New("ingest: summary without device model")
	}
	if len(s.Device) > maxKeyLen || len(s.Group) > maxKeyLen ||
		len(s.Scenario) > maxKeyLen || len(s.Chipset) > maxKeyLen {
		return fmt.Errorf("ingest: %.32s…: key field exceeds %d bytes", s.Device, maxKeyLen)
	}
	if s.Sent < 0 || s.Lost < 0 || s.Lost > s.Sent || s.Sent > maxCountPerSummary {
		return fmt.Errorf("ingest: %s: inconsistent sent/lost %d/%d", s.Device, s.Sent, s.Lost)
	}
	if s.BackgroundSent < 0 || s.BackgroundSent > maxCountPerSummary {
		return fmt.Errorf("ingest: %s: background count %d out of range", s.Device, s.BackgroundSent)
	}
	if s.EmulatedRTTNS < 0 || s.EmulatedRTTNS > maxRTTNS {
		return fmt.Errorf("ingest: %s: emulated RTT %dns out of range", s.Device, s.EmulatedRTTNS)
	}
	// Overheads are session means of RTT-scale quantities; anything
	// outside ±maxRTTNS would poison the learned per-model corrections
	// (PSM share may legitimately be slightly negative).
	for _, v := range [...]int64{s.UserOverheadNS, s.SDIOOverheadNS, s.PSMInflationNS} {
		if v > maxRTTNS || v < -maxRTTNS {
			return fmt.Errorf("ingest: %s: overhead %dns out of range", s.Device, v)
		}
	}
	if len(s.RTTs) > maxRTTsPerSummary {
		return fmt.Errorf("ingest: %s: %d RTTs exceeds per-session cap %d", s.Device, len(s.RTTs), maxRTTsPerSummary)
	}
	if len(s.RTTs) > s.Sent {
		return fmt.Errorf("ingest: %s: %d RTTs for %d sent probes", s.Device, len(s.RTTs), s.Sent)
	}
	for _, v := range s.RTTs {
		if v < 0 || v > maxRTTNS {
			return fmt.Errorf("ingest: %s: RTT %dns out of range", s.Device, v)
		}
	}
	if s.Sketch != nil {
		if len(s.RTTs) > 0 {
			return fmt.Errorf("ingest: %s: summary carries both raw RTTs and a sketch", s.Device)
		}
		if err := s.Sketch.Valid(); err != nil {
			return fmt.Errorf("ingest: %s: %w", s.Device, err)
		}
		if s.Sketch.Count > int64(s.Sent) {
			return fmt.Errorf("ingest: %s: sketch of %d RTTs for %d sent probes", s.Device, s.Sketch.Count, s.Sent)
		}
		if s.Sketch.Count > 0 && (s.Sketch.MinV < 0 || s.Sketch.MaxV > float64(maxRTTNS)) {
			return fmt.Errorf("ingest: %s: sketch values outside [0,%dns]", s.Device, maxRTTNS)
		}
	}
	return nil
}

// DecodeBatch parses a JSON-lines batch (whitespace-separated JSON
// objects; a trailing newline is optional) and validates every record.
// maxSummaries <= 0 means unlimited.
func DecodeBatch(r io.Reader, maxSummaries int) ([]Summary, error) {
	dec := json.NewDecoder(r)
	var out []Summary
	for {
		var s Summary
		if err := dec.Decode(&s); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("ingest: batch record %d: %w", len(out)+1, err)
		}
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("ingest: batch record %d: %w", len(out)+1, err)
		}
		out = append(out, s)
		if maxSummaries > 0 && len(out) > maxSummaries {
			return nil, fmt.Errorf("ingest: batch exceeds %d summaries", maxSummaries)
		}
	}
	if len(out) == 0 {
		return nil, errors.New("ingest: empty batch")
	}
	return out, nil
}

// EncodeBatch writes summaries as JSON lines — the exact bytes a device
// puts on the wire.
func EncodeBatch(w io.Writer, batch []Summary) error {
	enc := json.NewEncoder(w)
	for i := range batch {
		if err := enc.Encode(&batch[i]); err != nil {
			return err
		}
	}
	return nil
}
