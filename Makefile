# Local invocations mirror .github/workflows/ci.yml so "make ci" is
# exactly what the workflow runs.

GO ?= go

.PHONY: build test race bench lint fmt ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

fmt:
	gofmt -w .

ci: build lint race bench
