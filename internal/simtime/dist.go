package simtime

import (
	"fmt"
	"math"
	"time"
)

// Dist is a duration-valued random distribution. The latency models in
// this repository (SDIO wake cost, scheduler jitter, DVM overhead) are
// expressed as Dists so experiments can swap them or pin them to
// constants in tests.
type Dist interface {
	// Sample draws one value using the simulator's random source.
	Sample(s *Sim) time.Duration
	// Mean returns the distribution's analytical mean, used in docs and
	// sanity tests.
	Mean() time.Duration
	fmt.Stringer
}

// Const is a degenerate distribution that always returns its value.
type Const time.Duration

// Sample implements Dist.
func (c Const) Sample(*Sim) time.Duration { return time.Duration(c) }

// Mean implements Dist.
func (c Const) Mean() time.Duration { return time.Duration(c) }

func (c Const) String() string { return fmt.Sprintf("const(%v)", time.Duration(c)) }

// Uniform draws uniformly from [Lo, Hi].
type Uniform struct {
	Lo, Hi time.Duration
}

// Sample implements Dist.
func (u Uniform) Sample(s *Sim) time.Duration {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + time.Duration(s.Rand().Int63n(int64(u.Hi-u.Lo)+1))
}

// Mean implements Dist.
func (u Uniform) Mean() time.Duration { return (u.Lo + u.Hi) / 2 }

func (u Uniform) String() string { return fmt.Sprintf("uniform(%v,%v)", u.Lo, u.Hi) }

// Normal is a Gaussian clipped at Min (negative latencies make no sense).
type Normal struct {
	Mu, Sigma time.Duration
	Min       time.Duration
}

// Sample implements Dist.
func (n Normal) Sample(s *Sim) time.Duration {
	v := time.Duration(float64(n.Mu) + s.Rand().NormFloat64()*float64(n.Sigma))
	if v < n.Min {
		return n.Min
	}
	return v
}

// Mean implements Dist. The clipping bias is ignored; callers keep
// Mu >> Sigma so the approximation holds.
func (n Normal) Mean() time.Duration { return n.Mu }

func (n Normal) String() string { return fmt.Sprintf("normal(μ=%v,σ=%v)", n.Mu, n.Sigma) }

// LogNormal models heavy-ish right tails such as process scheduling
// delay and Dalvik VM overhead. MuLog/SigmaLog parameterise the
// underlying normal in log-space of seconds.
type LogNormal struct {
	MuLog, SigmaLog float64
	Min             time.Duration
}

// Sample implements Dist.
func (l LogNormal) Sample(s *Sim) time.Duration {
	v := math.Exp(l.MuLog + s.Rand().NormFloat64()*l.SigmaLog)
	d := time.Duration(v * float64(time.Second))
	if d < l.Min {
		return l.Min
	}
	return d
}

// Mean implements Dist.
func (l LogNormal) Mean() time.Duration {
	return time.Duration(math.Exp(l.MuLog+l.SigmaLog*l.SigmaLog/2) * float64(time.Second))
}

func (l LogNormal) String() string {
	return fmt.Sprintf("lognormal(μ=%.3f,σ=%.3f)", l.MuLog, l.SigmaLog)
}

// Exponential has the given mean, clipped below at Min.
type Exponential struct {
	MeanD time.Duration
	Min   time.Duration
}

// Sample implements Dist.
func (e Exponential) Sample(s *Sim) time.Duration {
	v := time.Duration(s.Rand().ExpFloat64() * float64(e.MeanD))
	if v < e.Min {
		return e.Min
	}
	return v
}

// Mean implements Dist.
func (e Exponential) Mean() time.Duration { return e.MeanD }

func (e Exponential) String() string { return fmt.Sprintf("exp(mean=%v)", e.MeanD) }

// Scaled multiplies another distribution by a constant factor, used to
// derate latencies for slower CPUs (e.g. the Xperia J's single core).
type Scaled struct {
	D      Dist
	Factor float64
}

// Sample implements Dist.
func (s Scaled) Sample(sim *Sim) time.Duration {
	return time.Duration(float64(s.D.Sample(sim)) * s.Factor)
}

// Mean implements Dist.
func (s Scaled) Mean() time.Duration { return time.Duration(float64(s.D.Mean()) * s.Factor) }

func (s Scaled) String() string { return fmt.Sprintf("%v×%.2f", s.D, s.Factor) }

// Mixture samples component i with probability Weights[i] (weights are
// normalised). It models bimodal behaviour such as "usually fast path,
// occasionally a GC pause".
type Mixture struct {
	Weights []float64
	Parts   []Dist
}

// Sample implements Dist.
func (m Mixture) Sample(s *Sim) time.Duration {
	if len(m.Parts) == 0 {
		return 0
	}
	total := 0.0
	for _, w := range m.Weights {
		total += w
	}
	x := s.Rand().Float64() * total
	for i, w := range m.Weights {
		if x < w || i == len(m.Parts)-1 {
			return m.Parts[i].Sample(s)
		}
		x -= w
	}
	return m.Parts[len(m.Parts)-1].Sample(s)
}

// Mean implements Dist.
func (m Mixture) Mean() time.Duration {
	total := 0.0
	var acc float64
	for i, w := range m.Weights {
		total += w
		acc += w * float64(m.Parts[i].Mean())
	}
	if total == 0 {
		return 0
	}
	return time.Duration(acc / total)
}

func (m Mixture) String() string { return fmt.Sprintf("mixture(%d parts)", len(m.Parts)) }
