package cellular

import (
	"context"
	"time"

	"repro/internal/kernel"
	"repro/internal/packet"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Testbed is the cellular analogue of the WiFi rig: a phone stack behind
// a modem, an operator core network with configurable extra delay, and a
// measurement server.
type Testbed struct {
	Sim    *simtime.Sim
	Fac    *packet.Factory
	Modem  *Modem
	Phone  *kernel.Stack
	Server *kernel.Stack
	Trace  *trace.Trace

	phoneIP, serverIP packet.IPv4Addr
}

// TestbedConfig parameterises the cellular testbed.
type TestbedConfig struct {
	Seed int64
	// Radio selects the RRC model (UMTS() or LTE()).
	Radio Config
	// CoreRTT is the additional round trip inside the operator core and
	// Internet path (split half per direction).
	CoreRTT  time.Duration
	TraceCap int
}

// NewTestbed assembles a cellular testbed.
func NewTestbed(cfg TestbedConfig) *Testbed {
	if cfg.Radio.Name == "" {
		cfg.Radio = UMTS()
	}
	tb := &Testbed{
		Sim:      simtime.New(cfg.Seed),
		Fac:      &packet.Factory{},
		phoneIP:  packet.IP(10, 20, 0, 2),
		serverIP: packet.IP(10, 0, 0, 9),
	}
	if cfg.TraceCap > 0 {
		tb.Trace = trace.New(cfg.TraceCap)
	}
	tb.Modem = NewModem(tb.Sim, cfg.Radio, tb.Trace)
	tb.Phone = kernel.New(tb.Sim, kernel.PhoneConfig(tb.phoneIP), tb.Modem, tb.Fac, tb.Trace)

	serverDev := kernel.DeviceFunc(func(p *packet.Packet) {
		// Server → core network → modem downlink.
		tb.Sim.Schedule(cfg.CoreRTT/2, func() {
			if p.IPv4() != nil && p.IPv4().Dst == tb.phoneIP {
				tb.Modem.DeliverFromNet(p)
			}
		})
	})
	tb.Server = kernel.New(tb.Sim, kernel.ServerConfig(tb.serverIP), serverDev, tb.Fac, tb.Trace)

	tb.Modem.Connect(func(p *packet.Packet) {
		// Modem uplink → core network → server.
		tb.Sim.Schedule(cfg.CoreRTT/2, func() {
			if p.IPv4() != nil && p.IPv4().Dst == tb.serverIP {
				tb.Server.DeliverFromDevice(p)
			}
		})
	}, tb.Phone.DeliverFromDevice)
	return tb
}

// ServerIP returns the measurement server address.
func (tb *Testbed) ServerIP() packet.IPv4Addr { return tb.serverIP }

// PingResult is one cellular ping campaign.
type PingResult struct {
	RTTs stats.Sample
	Sent int
	Lost int
}

// Ping sends count ICMP probes at the given interval and collects RTTs.
func (tb *Testbed) Ping(count int, interval time.Duration) PingResult {
	res, _ := tb.PingContext(context.Background(), count, interval, nil)
	return res
}

// PingContext is Ping under cooperative cancellation. onProbe (may be
// nil) observes every probe: completed probes as their replies arrive
// in virtual time, lost probes once the run drains. A cancelled context
// returns the partial result alongside ctx's error; unresolved probes
// are then neither ok nor lost.
func (tb *Testbed) PingContext(ctx context.Context, count int, interval time.Duration, onProbe func(seq int, rtt time.Duration, ok bool)) (PingResult, error) {
	var res PingResult
	const id = 0xCE11
	recv := make([]bool, count)
	sent := make([]time.Duration, count)
	tb.Phone.OnICMP(id, func(ic *packet.ICMP, p *packet.Packet, at time.Duration) {
		i := int(ic.Seq)
		if i < count && !recv[i] {
			recv[i] = true
			res.RTTs = append(res.RTTs, at-sent[i])
			if onProbe != nil {
				onProbe(i, at-sent[i], true)
			}
		}
	})
	for i := 0; i < count; i++ {
		i := i
		tb.Sim.Schedule(time.Duration(i)*interval, func() {
			sent[i] = tb.Sim.Now()
			res.Sent++
			tb.Phone.SendEcho(tb.serverIP, id, uint16(i), 56)
		})
	}
	err := tb.Sim.RunUntilCtx(ctx, tb.Sim.Now()+time.Duration(count)*interval+10*time.Second)
	tb.Phone.CloseICMP(id)
	if err != nil {
		return res, err
	}
	for i, ok := range recv {
		if !ok {
			res.Lost++
			if onProbe != nil {
				onProbe(i, 0, false)
			}
		}
	}
	return res, nil
}

// AcuteMonResult is a cellular AcuteMon run.
type AcuteMonResult struct {
	RTTs           stats.Sample
	Sent           int
	BackgroundSent int
	Lost           int
}

// RunAcuteMon applies the AcuteMon scheme over cellular: a warm-up
// packet promotes the modem to DCH; background packets every db keep it
// there (db needs only to undercut T1, so the background rate can be
// far lower than WiFi's 20 ms); K stop-and-wait UDP probes measure.
func (tb *Testbed) RunAcuteMon(k int, dpre, db time.Duration, probeTimeout time.Duration) AcuteMonResult {
	res, _ := tb.RunAcuteMonContext(context.Background(), k, dpre, db, probeTimeout, AcuteMonHooks{})
	return res
}

// AcuteMonHooks carries the optional knobs of a cellular AcuteMon run.
type AcuteMonHooks struct {
	// OnProbe observes every probe (completed and timed-out, in probe
	// order — the scheme is stop-and-wait).
	OnProbe func(seq int, rtt time.Duration, ok bool)
	// NoBackground suppresses the warm-up packet and the background
	// stream entirely (the A/B ablation arm): probes then pay RRC
	// promotions exactly as a naive tool would.
	NoBackground bool
	// BackgroundTTL overrides the TTL on warm-up/background packets
	// (0 → 1; they die in the operator core either way).
	BackgroundTTL byte
}

// RunAcuteMonContext is RunAcuteMon under cooperative cancellation,
// with per-run hooks.
func (tb *Testbed) RunAcuteMonContext(ctx context.Context, k int, dpre, db time.Duration, probeTimeout time.Duration, hooks AcuteMonHooks) (AcuteMonResult, error) {
	if probeTimeout <= 0 {
		probeTimeout = 5 * time.Second
	}
	if hooks.BackgroundTTL == 0 {
		hooks.BackgroundTTL = 1
	}
	onProbe := hooks.OnProbe
	var res AcuteMonResult
	bg, err := tb.Phone.OpenUDP(0)
	if err != nil {
		panic("cellular: bg socket: " + err.Error())
	}
	defer bg.Close()
	// Warm-up: TTL=1 packets die at the operator gateway in real life;
	// here the core network simply has no host at the warm-up address.
	warmupIP := packet.IP(10, 20, 0, 1)
	if !hooks.NoBackground {
		bg.SendTo(warmupIP, 9, []byte{0xAC}, hooks.BackgroundTTL)
	}

	stop := false
	var bgLoop func()
	bgLoop = func() {
		if stop || hooks.NoBackground {
			return
		}
		tb.Sim.Schedule(db, func() {
			if stop {
				return
			}
			bg.SendTo(warmupIP, 9, []byte{0xAC}, hooks.BackgroundTTL)
			res.BackgroundSent++
			bgLoop()
		})
	}

	probeSock, err := tb.Phone.OpenUDP(0)
	if err != nil {
		panic("cellular: probe socket: " + err.Error())
	}
	defer probeSock.Close()

	done := false
	var sentAt time.Duration
	var probe func(i int)
	waiting := -1
	probeSock.SetRecv(func(payload []byte, from packet.IPv4Addr, fp uint16, p *packet.Packet, at time.Duration) {
		if waiting < 0 {
			return
		}
		res.RTTs = append(res.RTTs, at-sentAt)
		i := waiting
		waiting = -1
		if onProbe != nil {
			onProbe(i, at-sentAt, true)
		}
		probe(i + 1)
	})
	probe = func(i int) {
		if i >= k {
			stop = true
			done = true
			return
		}
		sentAt = tb.Sim.Now()
		waiting = i
		res.Sent++
		probeSock.SendTo(tb.serverIP, 7, []byte{byte(i)}, 0)
		deadline := i
		tb.Sim.Schedule(probeTimeout, func() {
			if waiting == deadline {
				waiting = -1
				res.Lost++
				if onProbe != nil {
					onProbe(deadline, 0, false)
				}
				probe(deadline + 1)
			}
		})
	}
	// UDP echo on the server side.
	echo, err := tb.Server.OpenUDP(7)
	if err != nil {
		panic("cellular: echo socket: " + err.Error())
	}
	defer echo.Close()
	echo.SetRecv(func(payload []byte, from packet.IPv4Addr, fp uint16, p *packet.Packet, at time.Duration) {
		echo.SendTo(from, fp, payload, 0)
	})

	tb.Sim.Schedule(dpre, func() {
		bgLoop()
		probe(0)
	})
	limit := tb.Sim.Now() + dpre + time.Duration(k+2)*probeTimeout + 10*time.Second
	err = tb.Sim.StepUntilCtx(ctx, limit, func() bool { return done })
	stop = true
	return res, err
}
