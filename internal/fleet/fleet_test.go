package fleet

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

func smallCampaign(workers int) Campaign {
	sc, _ := ScenarioByName("device-mix")
	return Campaign{
		Name:     "test",
		Scenario: "device-mix",
		Seed:     7,
		Workers:  workers,
		Sessions: sc.Build(Params{Sessions: 24, Seed: 7, Probes: 10}),
	}
}

func TestCampaignRuns(t *testing.T) {
	var seen atomic.Int64
	c := smallCampaign(4)
	c.OnSession = func(r SessionResult) {
		if r.Err != nil {
			t.Errorf("session %d: %v", r.Session.ID, r.Err)
		}
		seen.Add(1)
	}
	rep, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 24 || rep.Errors != 0 {
		t.Fatalf("sessions=%d errors=%d", rep.Sessions, rep.Errors)
	}
	if seen.Load() != 24 {
		t.Fatalf("OnSession saw %d sessions", seen.Load())
	}
	var total int64
	for _, g := range rep.Groups {
		total += g.Sessions
		if g.Du.N == 0 {
			t.Errorf("group %s aggregated no RTTs", g.Label)
		}
		// Every group measures a 30ms path while dozing between probe
		// trains is defeated: the mean must sit near the emulated RTT.
		mean := g.Du.MeanDuration()
		if mean < 25*time.Millisecond || mean > 60*time.Millisecond {
			t.Errorf("group %s mean du = %v, want ≈30-45ms", g.Label, mean)
		}
	}
	if total != 24 {
		t.Fatalf("group sessions sum to %d", total)
	}
	out := rep.Render()
	for _, want := range []string{"campaign", "device-mix", "Group", "Inflation"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestCampaignDeterministicAcrossWorkerCounts is the scheduler's core
// guarantee: per-session seeding makes results identical no matter how
// many workers ran them.
func TestCampaignDeterministicAcrossWorkerCounts(t *testing.T) {
	rep1, err := Run(smallCampaign(1))
	if err != nil {
		t.Fatal(err)
	}
	rep4, err := Run(smallCampaign(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep1.Groups) != len(rep4.Groups) {
		t.Fatalf("group counts differ: %d vs %d", len(rep1.Groups), len(rep4.Groups))
	}
	for i, g1 := range rep1.Groups {
		g4 := rep4.Groups[i]
		if g1.Label != g4.Label || g1.Sessions != g4.Sessions {
			t.Fatalf("group %d: %s/%d vs %s/%d", i, g1.Label, g1.Sessions, g4.Label, g4.Sessions)
		}
		if g1.Du.N != g4.Du.N || g1.Du.MinV != g4.Du.MinV || g1.Du.MaxV != g4.Du.MaxV {
			t.Errorf("group %s: Du N/min/max diverge across worker counts", g1.Label)
		}
		if !approxEq(g1.Du.Mean, g4.Du.Mean, 1e-9) {
			t.Errorf("group %s: mean %v vs %v", g1.Label, g1.Du.Mean, g4.Du.Mean)
		}
		for b := range g1.DuHist.Counts {
			if g1.DuHist.Counts[b] != g4.DuHist.Counts[b] {
				t.Fatalf("group %s: histogram bin %d diverges", g1.Label, b)
			}
		}
	}
}

func TestCampaignSharedRegistry(t *testing.T) {
	reg := core.NewShardedRegistry(4)
	c := smallCampaign(4)
	c.Registry = reg
	c.AutoCalibrate = true
	rep, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors: %v", rep.FirstErrors)
	}
	if reg.Len() == 0 {
		t.Fatal("auto-calibration recorded nothing")
	}
	if len(rep.CalibratedModels) != reg.Len() {
		t.Errorf("CalibratedModels = %v, registry has %d entries", rep.CalibratedModels, reg.Len())
	}
	var calibrated int64
	for _, g := range rep.Groups {
		calibrated += g.CalibratedSessions
	}
	if calibrated != rep.Sessions {
		t.Errorf("%d/%d sessions used calibrated configs", calibrated, rep.Sessions)
	}
	for _, m := range reg.Models() {
		e, _ := reg.Lookup(m)
		if e.Interval <= 0 || e.Tip <= 0 {
			t.Errorf("%s: bad calibration %+v", m, e)
		}
	}

	// Determinism: the pre-pass makes the registry itself reproducible
	// for a different worker count.
	reg2 := core.NewShardedRegistry(2)
	c2 := smallCampaign(1)
	c2.Registry = reg2
	c2.AutoCalibrate = true
	if _, err := Run(c2); err != nil {
		t.Fatal(err)
	}
	for _, m := range reg.Models() {
		a, _ := reg.Lookup(m)
		b, ok := reg2.Lookup(m)
		if !ok || a != b {
			t.Errorf("%s: calibration differs across worker counts: %+v vs %+v", m, a, b)
		}
	}
}

func TestCampaignReportsBadModel(t *testing.T) {
	rep, err := Run(Campaign{
		Name: "bad",
		Sessions: []Session{
			{Phone: "Nokia 3310", Probes: 5},
			{Phone: "Google Nexus 5", Probes: 5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 1 {
		t.Fatalf("errors = %d, want 1", rep.Errors)
	}
	if len(rep.FirstErrors) != 1 || !strings.Contains(rep.FirstErrors[0], "Nokia") {
		t.Fatalf("FirstErrors = %v", rep.FirstErrors)
	}
	if g := rep.Group("Google Nexus 5"); g == nil || g.Du.N == 0 {
		t.Error("healthy session did not aggregate")
	}
	if _, err := Run(Campaign{Name: "empty"}); err == nil {
		t.Error("empty campaign accepted")
	}
}

func TestScenarioPresets(t *testing.T) {
	for _, sc := range Scenarios() {
		sessions := sc.Build(Params{Sessions: 20, Seed: 3, Probes: 5})
		if len(sessions) != 20 {
			t.Errorf("%s: %d sessions", sc.Name, len(sessions))
		}
		again := sc.Build(Params{Sessions: 20, Seed: 3, Probes: 5})
		for i := range sessions {
			if sessions[i] != again[i] {
				t.Errorf("%s: session %d not deterministic", sc.Name, i)
			}
		}
	}
	sc, ok := ScenarioByName("psm-sweep")
	if !ok {
		t.Fatal("psm-sweep missing")
	}
	labels := map[string]bool{}
	for _, s := range sc.Build(Params{Sessions: 10, Seed: 1}) {
		labels[s.Label] = true
		if s.PSMTimeout <= 0 {
			t.Error("psm-sweep session without timer override")
		}
	}
	if len(labels) != 5 {
		t.Errorf("psm-sweep produced %d groups, want 5", len(labels))
	}
	if _, ok := ScenarioByName("nope"); ok {
		t.Error("unknown scenario resolved")
	}
}

// TestPSMSweepShiftsInflation checks the sweep produces the paper's
// causal story at fleet scale: a short PSM timer (aggressive dozing)
// inflates unprotected phases more than a long one. AcuteMon's BT holds
// the phone awake during measurement, so the effect shows up in the
// settle-phase PSM activity rather than du; here we just confirm the
// campaign runs all arms and reports sane aggregates.
func TestPSMSweepShiftsInflation(t *testing.T) {
	sc, _ := ScenarioByName("psm-sweep")
	rep, err := Run(Campaign{
		Name:     "psm",
		Scenario: "psm-sweep",
		Seed:     5,
		Workers:  2,
		Sessions: sc.Build(Params{Sessions: 10, Seed: 5, Probes: 10}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Groups) != 5 {
		t.Fatalf("groups = %d", len(rep.Groups))
	}
	for _, g := range rep.Groups {
		if g.Errors > 0 {
			t.Errorf("%s: %d errors", g.Label, g.Errors)
		}
		if g.Inflation.N == 0 || g.Inflation.Mean < 0.8 {
			t.Errorf("%s: inflation %+v", g.Label, g.Inflation)
		}
	}
}

func TestMapOrdersAndCovers(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8} {
		got := Map(workers, 100, func(i int) int { return i * i })
		if len(got) != 100 {
			t.Fatalf("workers=%d: len %d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
	if got := Map[int](4, 0, nil); got != nil {
		t.Error("n=0 should return nil")
	}
}

func TestSeedForDecorrelatesAndIsStable(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 10_000; i++ {
		s := SeedFor(7, i)
		if s <= 0 {
			t.Fatalf("SeedFor(7,%d) = %d, want positive", i, s)
		}
		if seen[s] {
			t.Fatalf("seed collision at %d", i)
		}
		seen[s] = true
	}
	if SeedFor(7, 3) != SeedFor(7, 3) {
		t.Error("SeedFor not stable")
	}
	if SeedFor(7, 3) == SeedFor(8, 3) {
		t.Error("base seed ignored")
	}
}

// TestToolMixCampaign is the acceptance test for mixed-method
// campaigns: every probing scheme runs through the unified Session API
// inside one report, and the paper's ordering survives — the
// comparison tools (dozing between paced probes) inflate while
// acutemon's background traffic holds the measurement near the path
// RTT.
func TestToolMixCampaign(t *testing.T) {
	sc, ok := ScenarioByName("tool-mix")
	if !ok {
		t.Fatal("tool-mix scenario missing")
	}
	rep, err := Run(Campaign{
		Name:     "mix",
		Scenario: "tool-mix",
		Seed:     11,
		Workers:  2,
		Sessions: sc.Build(Params{Sessions: 10, Seed: 11, Probes: 8}),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"acutemon", "httping", "javaping", "ping", "ping2"}
	if len(rep.Groups) != len(want) {
		t.Fatalf("groups = %d (%v), want %d methods", len(rep.Groups), rep.Groups, len(want))
	}
	for i, g := range rep.Groups {
		if g.Label != want[i] {
			t.Fatalf("group %d = %q, want %q", i, g.Label, want[i])
		}
		if g.Errors > 0 {
			t.Errorf("%s: %d session errors (%v)", g.Label, g.Errors, rep.FirstErrors)
		}
		if g.Du.N == 0 {
			t.Errorf("%s aggregated no RTTs", g.Label)
		}
	}
	am, ping := rep.Group("acutemon"), rep.Group("ping")
	if am.Du.MeanDuration() > 45*time.Millisecond {
		t.Errorf("acutemon mean du = %v, want ≈30ms (no inflation)", am.Du.MeanDuration())
	}
	if ping.Du.MeanDuration() < am.Du.MeanDuration() {
		t.Errorf("ping mean %v < acutemon mean %v; dozing should inflate ping",
			ping.Du.MeanDuration(), am.Du.MeanDuration())
	}
}

// TestWifiVsCellularCampaign checks the cellular backend rides the same
// campaign machinery: three environment groups in one report, no
// session errors, and DCH-pinned cellular RTTs in a sane band.
func TestWifiVsCellularCampaign(t *testing.T) {
	sc, ok := ScenarioByName("wifi-vs-cellular")
	if !ok {
		t.Fatal("wifi-vs-cellular scenario missing")
	}
	rep, err := Run(Campaign{
		Name:     "wvc",
		Scenario: "wifi-vs-cellular",
		Seed:     13,
		Workers:  3,
		Sessions: sc.Build(Params{Sessions: 9, Seed: 13, Probes: 6}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Groups) != 3 {
		t.Fatalf("groups = %d, want wifi + cellular-umts + cellular-lte", len(rep.Groups))
	}
	for _, g := range rep.Groups {
		if g.Errors > 0 {
			t.Errorf("%s: %d session errors (%v)", g.Label, g.Errors, rep.FirstErrors)
		}
		if g.Du.N == 0 {
			t.Errorf("%s aggregated no RTTs", g.Label)
		}
	}
	umts := rep.Group("cellular-umts")
	if umts == nil {
		t.Fatal("cellular-umts group missing")
	}
	// AcuteMon's background traffic pins the modem in DCH: per-probe
	// RTT ≈ core RTT + 2×DCH latency (20-35 ms one way on UMTS), far
	// below the seconds-scale IDLE promotion it would otherwise pay.
	if mean := umts.Du.MeanDuration(); mean < 50*time.Millisecond || mean > 200*time.Millisecond {
		t.Errorf("umts mean du = %v, want DCH-pinned ≈70-100ms", mean)
	}
}
