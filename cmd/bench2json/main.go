// Command bench2json converts `go test -bench` text output on stdin
// into a JSON document on stdout, so CI can archive benchmark runs
// (BENCH_N.json artifacts) and trend-track ns/op and summaries/sec
// across PRs without scraping logs.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -run='^$' ./... | bench2json > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Pkg        string             `json:"pkg"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Output is the whole document.
type Output struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Failures   []string    `json:"failures,omitempty"`
}

func main() {
	out := Output{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			out.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "FAIL"):
			out.Failures = append(out.Failures, strings.TrimSpace(line))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(pkg, line); ok {
				out.Benchmarks = append(out.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	if len(out.Failures) > 0 {
		os.Exit(1)
	}
}

// parseBench parses "BenchmarkName-8  3550  670815 ns/op  149072
// summaries/sec" into name, iteration count, and value/unit metric
// pairs.
func parseBench(pkg, line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Pkg: pkg, Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
