package testbed

import (
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/stats"
)

// pingRecord is one raw ICMP probe outcome (no app-runtime overhead; the
// tools package adds that).
type pingRecord struct {
	tou, tiu      time.Duration
	reqID, respID uint64
	ok            bool
}

// rawPingSeries fires n kernel-level pings at the given interval and
// waits for stragglers before returning.
func rawPingSeries(tb *Testbed, n int, interval time.Duration) []pingRecord {
	recs := make([]pingRecord, n)
	const icmpID = 0x55
	tb.Phone.Stack.OnICMP(icmpID, func(ic *packet.ICMP, p *packet.Packet, at time.Duration) {
		i := int(ic.Seq)
		if i < len(recs) && !recs[i].ok {
			recs[i].tiu = at
			recs[i].respID = p.ID
			recs[i].ok = true
		}
	})
	for i := 0; i < n; i++ {
		i := i
		tb.Sim.At(time.Duration(i)*interval+10*time.Millisecond, func() {
			recs[i].tou = tb.Sim.Now()
			req := tb.Phone.Stack.SendEcho(ServerIP, icmpID, uint16(i), 56)
			recs[i].reqID = req.ID
		})
	}
	tb.Sim.RunUntil(time.Duration(n)*interval + 2*time.Second)
	tb.Phone.Stack.CloseICMP(icmpID)
	return recs
}

func collect(tb *Testbed, recs []pingRecord) (du, dk, dn stats.Sample) {
	for _, r := range recs {
		if !r.ok {
			continue
		}
		l := tb.ExtractRTTs(r.reqID, r.respID, r.tou, r.tiu)
		if l.DuOK {
			du = append(du, l.Du)
		}
		if l.DkOK {
			dk = append(dk, l.Dk)
		}
		if l.DnOK {
			dn = append(dn, l.Dn)
		}
	}
	return
}

func TestAssemblySanity(t *testing.T) {
	tb := New(DefaultConfig())
	tb.Sim.RunUntil(time.Second)
	if tb.AP.Stats.BeaconsSent < 8 {
		t.Fatalf("beacons = %d", tb.AP.Stats.BeaconsSent)
	}
	// Sniffers must have heard the beacons.
	if tb.MergedCapture().Count() < 8 {
		t.Fatalf("sniffers captured %d frames", tb.MergedCapture().Count())
	}
}

func TestFastIntervalPingMatchesEmulatedRTT(t *testing.T) {
	// Table 2, Nexus 5 @ 30ms / 10ms interval: du ≈ 33.4ms, dn ≈ 31.2ms.
	cfg := DefaultConfig()
	cfg.Seed = 42
	tb := New(cfg)
	recs := rawPingSeries(tb, 100, 10*time.Millisecond)
	du, _, dn := collect(tb, recs)
	if len(du) < 95 {
		t.Fatalf("only %d pings completed", len(du))
	}
	duM, dnM := stats.Millis(du.Mean()), stats.Millis(dn.Mean())
	if duM < 31 || duM > 36 {
		t.Errorf("du mean = %.2fms, want ≈33ms", duM)
	}
	if dnM < 30 || dnM > 33 {
		t.Errorf("dn mean = %.2fms, want ≈31ms", dnM)
	}
	if duM <= dnM {
		t.Errorf("du (%.2f) must exceed dn (%.2f)", duM, dnM)
	}
}

func TestSlowIntervalNexus5InflatesInternally(t *testing.T) {
	// Table 2, Nexus 5 @ 30ms / 1s interval: the SDIO wake inflates du
	// (≈43ms) while dn stays near the emulated value (Tip=205ms ≫ 30ms).
	cfg := DefaultConfig()
	cfg.Seed = 43
	tb := New(cfg)
	recs := rawPingSeries(tb, 60, time.Second)
	du, dk, dn := collect(tb, recs)
	if len(du) < 55 || len(dn) < 50 {
		t.Fatalf("samples: du=%d dn=%d", len(du), len(dn))
	}
	duM, dnM := stats.Millis(du.Mean()), stats.Millis(dn.Mean())
	if dnM < 30 || dnM > 34 {
		t.Errorf("dn mean = %.2fms, want ≈31.8ms (no PSM inflation)", dnM)
	}
	if duM-dnM < 8 || duM-dnM > 16 {
		t.Errorf("internal inflation du-dn = %.2fms, want ≈11.4ms (SDIO wake)", duM-dnM)
	}
	_ = dk
}

func TestSlowIntervalNexus4InflatesExternally(t *testing.T) {
	// Table 2, Nexus 4 @ 60ms / 1s interval: Tip=40ms < 60ms, so replies
	// are beacon-buffered: dn ≈ 130ms instead of 62ms.
	cfg := DefaultConfig()
	cfg.Seed = 44
	cfg.Phone = mustProfile("Google Nexus 4")
	cfg.EmulatedRTT = 60 * time.Millisecond
	tb := New(cfg)
	recs := rawPingSeries(tb, 60, time.Second)
	_, _, dn := collect(tb, recs)
	if len(dn) < 50 {
		t.Fatalf("dn samples = %d", len(dn))
	}
	dnM := stats.Millis(dn.Mean())
	if dnM < 95 || dnM > 160 {
		t.Errorf("dn mean = %.2fms, want ≈130ms (beacon-buffered)", dnM)
	}
}

func TestNexus4FastIntervalNotInflated(t *testing.T) {
	// Control: Nexus 4 @ 60ms / 10ms interval stays near 62ms.
	cfg := DefaultConfig()
	cfg.Seed = 45
	cfg.Phone = mustProfile("Google Nexus 4")
	cfg.EmulatedRTT = 60 * time.Millisecond
	tb := New(cfg)
	recs := rawPingSeries(tb, 100, 10*time.Millisecond)
	_, _, dn := collect(tb, recs)
	dnM := stats.Millis(dn.Mean())
	if dnM < 60 || dnM > 65 {
		t.Errorf("dn mean = %.2fms, want ≈62ms", dnM)
	}
}

func TestLayerOrderingInvariant(t *testing.T) {
	// du >= dk >= dn must hold per probe (each layer adds overhead).
	cfg := DefaultConfig()
	cfg.Seed = 46
	cfg.SnifferLoss = 0
	tb := New(cfg)
	recs := rawPingSeries(tb, 50, 100*time.Millisecond)
	for i, r := range recs {
		if !r.ok {
			continue
		}
		l := tb.ExtractRTTs(r.reqID, r.respID, r.tou, r.tiu)
		if !l.DuOK || !l.DkOK || !l.DnOK {
			t.Fatalf("probe %d missing layers: %+v", i, l)
		}
		if l.Du < l.Dk {
			t.Fatalf("probe %d: du %v < dk %v", i, l.Du, l.Dk)
		}
		if l.Dk < l.Dn {
			t.Fatalf("probe %d: dk %v < dn %v", i, l.Dk, l.Dn)
		}
	}
}

func TestCrossTrafficInflatesRTT(t *testing.T) {
	quiet := func() float64 {
		cfg := DefaultConfig()
		cfg.Seed = 47
		tb := New(cfg)
		recs := rawPingSeries(tb, 60, 50*time.Millisecond)
		du, _, _ := collect(tb, recs)
		return stats.Millis(du.Median())
	}()
	loaded := func() float64 {
		cfg := DefaultConfig()
		cfg.Seed = 47
		tb := New(cfg)
		tb.StartCrossTraffic()
		recs := rawPingSeries(tb, 60, 50*time.Millisecond)
		du, _, _ := collect(tb, recs)
		return stats.Millis(du.Median())
	}()
	if loaded <= quiet+1 {
		t.Fatalf("cross traffic did not inflate RTT: quiet %.2fms loaded %.2fms", quiet, loaded)
	}
}

func TestDisableBusSleepRemovesInternalInflation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 48
	cfg.DisableBusSleep = true
	tb := New(cfg)
	recs := rawPingSeries(tb, 40, time.Second)
	du, _, dn := collect(tb, recs)
	gap := stats.Millis(du.Mean()) - stats.Millis(dn.Mean())
	if gap > 5 {
		t.Fatalf("du-dn = %.2fms with bus sleep disabled, want < 5ms", gap)
	}
}

func TestDeterministicTestbedRuns(t *testing.T) {
	run := func() (float64, uint64) {
		cfg := DefaultConfig()
		cfg.Seed = 49
		tb := New(cfg)
		recs := rawPingSeries(tb, 20, 20*time.Millisecond)
		du, _, _ := collect(tb, recs)
		return stats.Millis(du.Mean()), tb.Med.Stats.FramesDelivered
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatalf("nondeterministic: (%v,%v) vs (%v,%v)", a1, b1, a2, b2)
	}
}
