package ingest

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/puncture"
	"repro/internal/report"
)

// Config parameterises an ingest server.
type Config struct {
	// Addr is the listen address ("" → 127.0.0.1:0, i.e. loopback on an
	// ephemeral port — the test/benchmark default).
	Addr string
	// TCPAddr, when set, additionally opens a raw TCP listener speaking
	// back-to-back binary batch frames (see tcp.go) — the lowest-overhead
	// wire for long-lived device connections. "" disables it; ":0" binds
	// an ephemeral port.
	TCPAddr string
	// Window is the aggregation window width (0 → 1 minute; negative
	// disables time bucketing entirely).
	Window time.Duration
	// StoreShards / PunctureShards stripe the aggregate store and the
	// learned-overhead table (<1 → package defaults).
	StoreShards    int
	PunctureShards int
	// QueueDepth bounds outstanding decoded batches between the wire
	// handlers and the fold pipelines (<1 → 256). It is both the batch
	// credit pool and each pipe's buffer depth; exhaustion is
	// backpressure: posts get 503 + Retry-After instead of piling up.
	QueueDepth int
	// FoldWorkers is the number of per-core fold pipelines; summaries
	// are routed to pipelines by cell-key hash (<1 → GOMAXPROCS).
	FoldWorkers int
	// MaxConns bounds concurrently accepted TCP connections (<1 → 512).
	MaxConns int
	// MaxBatchBytes caps one POST body (<1 → 8 MiB).
	MaxBatchBytes int64
	// MaxBatchSummaries caps records per batch (<1 → 10000).
	MaxBatchSummaries int
	// MaxCells bounds distinct aggregation cells (0 → store default;
	// negative removes the cap). Summaries that would mint a cell past
	// the cap are dropped and counted, so key-cardinality abuse cannot
	// OOM the daemon.
	MaxCells int64
	// Retention is how long closed windows are kept at fine granularity
	// before the janitor compacts them into rollups (or, with
	// compaction disabled, prunes them; 0 → 24h; negative → keep
	// forever). Irrelevant when time bucketing is off.
	Retention time.Duration
	// CompactWindow is the rollup window width expired fine cells merge
	// into (0 → 10× Window; negative disables compaction, reverting the
	// janitor to the legacy lossy Prune). Counts/moments/histograms stay
	// exact through compaction; sketch quantiles keep the agg merge
	// bound.
	CompactWindow time.Duration
	// StreamInterval is the /v1/stream broadcast coalescing interval
	// (0 → 100ms; negative broadcasts on every fold with no coalescing
	// delay — test/benchmark use).
	StreamInterval time.Duration
	// MaxSubscribers caps concurrent /v1/stream clients (<1 → 64);
	// past it new subscriptions get 503 + Retry-After, counted.
	MaxSubscribers int
	// Registry, when non-nil, is the calibration database consulted per
	// device model and served under /models. Its backing knowledge
	// store becomes the server's device-knowledge store, so learned
	// overheads and calibrations live side by side.
	Registry *core.ShardedRegistry
	// Profiles, when non-nil, is the device-knowledge store the server
	// rides (takes precedence over Registry's backing store). Served
	// whole under /v1/profiles; fleet deltas POSTed there merge into it.
	Profiles *puncture.Store
	// ProfilesPath, when set, persists the knowledge store: loaded (and
	// merged into the store) on boot if the file exists, snapshotted
	// atomically every ProfilesInterval, and saved once more on
	// Shutdown — so an ingestd restart preserves the learned overhead
	// table bit-for-bit.
	ProfilesPath string
	// ProfilesInterval is the periodic snapshot cadence when
	// ProfilesPath is set (0 → 1 minute; negative disables the periodic
	// saver, keeping only the load-on-boot and save-on-drain).
	ProfilesInterval time.Duration
}

func (c *Config) fill() {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.Window == 0 {
		c.Window = time.Minute
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 256
	}
	if c.FoldWorkers < 1 {
		c.FoldWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxConns < 1 {
		c.MaxConns = 512
	}
	if c.MaxBatchBytes < 1 {
		c.MaxBatchBytes = 8 << 20
	}
	if c.MaxBatchSummaries < 1 {
		c.MaxBatchSummaries = 10000
	}
	if c.Retention == 0 {
		c.Retention = 24 * time.Hour
	}
	if c.CompactWindow == 0 {
		c.CompactWindow = 10 * c.Window
	}
	if c.StreamInterval == 0 {
		c.StreamInterval = 100 * time.Millisecond
	}
	if c.MaxSubscribers < 1 {
		c.MaxSubscribers = 64
	}
	if c.ProfilesInterval == 0 {
		c.ProfilesInterval = time.Minute
	}
}

// Event-time clamp horizon: a phone's clock may drift or a batch may
// upload late, but beyond this the stamp is treated as hostile/broken
// and replaced with arrival time.
const (
	maxEventSkewMS = int64(5 * time.Minute / time.Millisecond)
	maxEventAgeMS  = int64(7 * 24 * time.Hour / time.Millisecond)
)

// Metrics are the server's monotonic operational counters, all safe to
// read concurrently. (Cell-cap drops live on the Store, the single
// source of truth surfaced via MetricsSnapshot.)
type Metrics struct {
	AcceptedBatches   atomic.Int64
	AcceptedSummaries atomic.Int64
	FoldedSummaries   atomic.Int64
	FoldedSamples     atomic.Int64
	RejectedBatches   atomic.Int64 // backpressure 503s
	BadBatches        atomic.Int64 // malformed 400s
	OversizedBatches  atomic.Int64 // 413s (client should split and retry)
	PrunedCells       atomic.Int64 // windows deleted by legacy lossy retention
	ProfileMerges     atomic.Int64 // fleet deltas accepted at POST /v1/profiles
	ProfileSaves      atomic.Int64 // knowledge snapshots written to disk
	ProfileSaveErrors atomic.Int64
	CompactionCycles  atomic.Int64 // janitor compact+cap passes completed
	StreamEvents      atomic.Int64 // /v1/stream deltas delivered (SSE + poll)
	StreamDropped     atomic.Int64 // stream clients dropped as gone/too slow
	StreamRejected    atomic.Int64 // stream subscriptions refused at the cap
	// FoldNanos/FoldJobs back the acutemon_fold_ns summary on /metrics:
	// total wall time the fold workers spent draining pipe jobs and the
	// number of jobs drained, so production fold latency (sum/count) is
	// observable without a profiler. Two atomics, not a histogram — the
	// fold loop is the hottest path in the daemon.
	FoldNanos atomic.Int64
	FoldJobs  atomic.Int64
}

// Server is a running ingest + query service.
type Server struct {
	cfg     Config
	store   *Store
	punc    *Puncturer
	metrics Metrics
	// pipes are the per-core fold pipelines; credits is the shared
	// batch-credit pool bounding outstanding batches (see pipeline.go).
	pipes   []chan pipeJob
	credits chan struct{}
	// bcast fans fold/compaction activity out to /v1/stream
	// subscribers. Nil on hand-built test servers — every use is
	// nil-guarded.
	bcast *broadcaster
	ln    net.Listener
	http  *http.Server
	// mux is kept so the cluster layer can mount its endpoints after
	// Start (Server.Handle); repl is its replica source, installed via
	// SetReplicaSource — nil on every non-clustered server.
	mux    *http.ServeMux
	repl   atomic.Pointer[replicaHolder]
	tcpLn  net.Listener
	tcp    tcpConns
	tcpWG  sync.WaitGroup
	foldWG sync.WaitGroup
	// inflight counts ingest handlers past the draining check. A plain
	// atomic (polled in Shutdown) rather than a WaitGroup: an abandoned
	// WaitGroup.Wait from a timed-out drain could race a later Add from
	// a straggling request into a "WaitGroup misuse" panic; an atomic
	// counter has no such failure mode.
	inflight    atomic.Int64
	closeOnce   sync.Once
	janitorStop chan struct{}
	janitorOnce sync.Once
	persistWG   sync.WaitGroup
	started     time.Time
	draining    atomic.Bool
	servErr     chan error
	// ageClampMS is the accepted event-time age horizon: never older
	// than the retention window, else a 202-accepted late batch would
	// fold into an already-expired window and be pruned before anyone
	// could query it.
	ageClampMS int64
}

// Start listens, spawns the fold workers, and begins serving. The
// returned server is live; stop it with Shutdown.
//
//acutemon:ignore AM005 bind-only constructor (the net.Listen is a local bind, not a wait); the server's lifecycle context lives in Shutdown(ctx)
func Start(cfg Config) (*Server, error) {
	cfg.fill()
	window := cfg.Window
	if window < 0 {
		window = 0
	}
	// One knowledge store serves the whole daemon: an explicit Profiles
	// store wins, else the Registry's backing store, else a fresh one.
	knowledge := cfg.Profiles
	if knowledge == nil && cfg.Registry != nil {
		knowledge = cfg.Registry.Store()
	}
	if knowledge == nil {
		knowledge = puncture.NewStore(cfg.PunctureShards)
	}
	if cfg.ProfilesPath != "" {
		snap, found, err := loadProfiles(cfg.ProfilesPath)
		if err != nil {
			return nil, err
		}
		if found {
			if err := knowledge.MergeSnapshot(snap); err != nil {
				return nil, fmt.Errorf("ingest: profiles %s: %w", cfg.ProfilesPath, err)
			}
		}
	}
	s := &Server{
		cfg:         cfg,
		store:       NewStore(window, cfg.StoreShards),
		punc:        NewPuncturerStore(knowledge),
		pipes:       make([]chan pipeJob, cfg.FoldWorkers),
		credits:     make(chan struct{}, cfg.QueueDepth),
		janitorStop: make(chan struct{}),
		started:     time.Now(),
		servErr:     make(chan error, 1),
	}
	for i := range s.pipes {
		s.pipes[i] = make(chan pipeJob, cfg.QueueDepth)
	}
	if cfg.MaxCells != 0 {
		s.store.SetMaxCells(cfg.MaxCells)
	}
	if window > 0 && cfg.CompactWindow > 0 {
		s.store.EnableCompaction(cfg.CompactWindow)
	}
	s.bcast = newBroadcaster(cfg.StreamInterval, cfg.MaxSubscribers)
	s.ageClampMS = maxEventAgeMS
	if retMS := int64(cfg.Retention / time.Millisecond); window > 0 && retMS > 0 && retMS < s.ageClampMS {
		s.ageClampMS = retMS
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ingest", s.handleIngest)
	mux.HandleFunc("/v1/profiles", s.handleProfiles)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/v1/stream", s.handleStream)
	mux.HandleFunc("/models", s.handleModels)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux = mux

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("ingest: listen %s: %w", cfg.Addr, err)
	}
	s.ln = &boundedListener{Listener: ln, sem: make(chan struct{}, cfg.MaxConns)}
	s.http = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}

	s.foldWG.Add(cfg.FoldWorkers)
	for i := 0; i < cfg.FoldWorkers; i++ {
		go s.foldLoop(i)
	}
	if cfg.TCPAddr != "" {
		if err := s.startTCP(cfg.TCPAddr); err != nil {
			ln.Close()
			for _, p := range s.pipes {
				close(p)
			}
			return nil, err
		}
	}
	if window > 0 && cfg.Retention > 0 {
		go s.janitor(window, cfg.Retention)
	}
	if cfg.ProfilesPath != "" && cfg.ProfilesInterval > 0 {
		s.persistWG.Add(1)
		go s.profilesPersister(cfg.ProfilesInterval)
	}
	go func() {
		if err := s.http.Serve(s.ln); err != nil && err != http.ErrServerClosed {
			s.servErr <- err
		}
	}()
	return s, nil
}

// janitor bounds a long-running daemon's memory: with compaction
// enabled (the default) expired windows demote losslessly into rollup
// cells and the fine tier is re-capped globally; with it disabled
// (CompactWindow < 0) the legacy lossy Prune runs, counted. Either
// way the cell cap handles hostile key cardinality.
func (s *Server) janitor(window, retention time.Duration) {
	interval := window
	if interval > time.Minute {
		interval = time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			now := time.Now()
			cutoff := now.Add(-retention).UnixMilli()
			if s.store.CompactionEnabled() {
				cells, _ := s.store.Compact(cutoff)
				cells += s.store.EnforceCap(now.UnixMilli())
				s.metrics.CompactionCycles.Add(1)
				if cells > 0 && s.bcast != nil {
					s.bcast.poke()
				}
			} else if n := s.store.Prune(cutoff); n > 0 {
				s.metrics.PrunedCells.Add(int64(n))
				if s.bcast != nil {
					s.bcast.poke()
				}
			}
		case <-s.janitorStop:
			return
		}
	}
}

// loadProfiles reads a knowledge snapshot; a missing file is a clean
// first boot.
func loadProfiles(path string) (*puncture.Snapshot, bool, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("ingest: profiles: %w", err)
	}
	defer f.Close()
	snap, err := puncture.ReadSnapshot(f)
	if err != nil {
		return nil, false, fmt.Errorf("ingest: profiles %s: %w", path, err)
	}
	return snap, true, nil
}

// profilesPersister snapshots the knowledge store atomically on a
// cadence, so a crash loses at most one interval of learning; the
// graceful path saves once more after the drain.
func (s *Server) profilesPersister(interval time.Duration) {
	defer s.persistWG.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.saveProfiles()
		case <-s.janitorStop:
			return
		}
	}
}

func (s *Server) saveProfiles() {
	if s.cfg.ProfilesPath == "" {
		return
	}
	if err := s.punc.Store().SaveFile(s.cfg.ProfilesPath); err != nil {
		s.metrics.ProfileSaveErrors.Add(1)
		return
	}
	s.metrics.ProfileSaves.Add(1)
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the base URL clients post to.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Store exposes the aggregate store (reads are snapshot-consistent per
// stripe).
func (s *Server) Store() *Store { return s.store }

// Puncturer exposes the live puncturing state.
func (s *Server) Puncturer() *Puncturer { return s.punc }

// MetricsSnapshot returns a plain-value copy of the counters. On a
// clustered server the acutemon_cluster_* set rides along.
func (s *Server) MetricsSnapshot() map[string]int64 {
	m := map[string]int64{
		"accepted_batches":   s.metrics.AcceptedBatches.Load(),
		"accepted_summaries": s.metrics.AcceptedSummaries.Load(),
		"folded_summaries":   s.metrics.FoldedSummaries.Load(),
		"folded_samples":     s.metrics.FoldedSamples.Load(),
		"rejected_batches":   s.metrics.RejectedBatches.Load(),
		"bad_batches":        s.metrics.BadBatches.Load(),
		"oversized_batches":  s.metrics.OversizedBatches.Load(),
		"dropped_summaries":  s.store.Dropped(),
		"pruned_cells":       s.metrics.PrunedCells.Load(),
		// Retention accounting: every cell that leaves the fine tier is
		// either compacted (janitor, lossless), evicted (cap pressure,
		// lossless), or — legacy mode only — pruned (lossy). Sessions
		// demoted into rollups are preserved, not lost; a nonzero
		// rollup_merge_errors would mean loss and is therefore counted.
		"compacted_cells":     s.store.Compacted(),
		"compacted_sessions":  s.store.CompactedSessions(),
		"evicted_cells":       s.store.Evicted(),
		"rollup_cells":        s.store.RollupCells(),
		"rollup_merge_errors": s.store.RollupErrors(),
		"compaction_cycles":   s.metrics.CompactionCycles.Load(),
		"stream_events":       s.metrics.StreamEvents.Load(),
		"stream_coalesced":    s.streamCoalesced(),
		"stream_dropped":      s.metrics.StreamDropped.Load(),
		"stream_rejected":     s.metrics.StreamRejected.Load(),
		"stream_subscribers":  s.streamSubscribers(),
		// Knowledge-store accounting: learned profiles live in the
		// store, mints refused at the model cap are counted, not
		// silently dropped.
		"learned_models":      int64(s.punc.Store().Len()),
		"profile_rejections":  s.punc.Store().Rejected(),
		"profile_merges":      s.metrics.ProfileMerges.Load(),
		"profile_saves":       s.metrics.ProfileSaves.Load(),
		"profile_save_errors": s.metrics.ProfileSaveErrors.Load(),
	}
	if src := s.replicaSource(); src != nil {
		for k, v := range src.Counters() {
			m[k] = v
		}
	}
	return m
}

// streamSubscribers / streamCoalesced tolerate a nil broadcaster
// (hand-built test servers never start one).
func (s *Server) streamSubscribers() int64 {
	if s.bcast == nil {
		return 0
	}
	return s.bcast.count()
}

func (s *Server) streamCoalesced() int64 {
	if s.bcast == nil {
		return 0
	}
	return s.bcast.coalesced.Load()
}

// Shutdown drains gracefully: stop accepting, let in-flight handlers
// finish, then drain the batch queue through the fold workers so every
// accepted summary lands in the store before the process exits. The
// context bounds the whole drain; if it expires while a slow client is
// still mid-POST, the queue is left open (the stalled handler may yet
// enqueue) and only the drain guarantee is lost, never process safety.
// Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.janitorOnce.Do(func() { close(s.janitorStop) })
	// Drain the stream before http.Shutdown: SSE handlers hold their
	// connections open forever, so Shutdown would wait on them until its
	// context expired. The drain signal makes each handler flush its
	// final deltas, emit a drain event, and return.
	if s.bcast != nil {
		s.bcast.shutdown()
	}
	// Stop the raw TCP wire first: close the listener, then force-close
	// live connections — their frame loops observe draining (answering
	// busy) or error out of the blocked read; either way they exit, and
	// any frame already past the draining check is in the inflight count
	// the poll below waits on.
	if s.tcpLn != nil {
		s.tcpLn.Close()
		s.tcp.closeAll()
	}
	err := s.http.Shutdown(ctx)

	// Wait for every handler that got past the draining check before
	// closing the pipes: http.Shutdown returns early with the handler
	// still running when its context expires, and closing under a
	// pending pipe send would panic the process mid-drain.
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for s.inflight.Load() != 0 {
		select {
		case <-tick.C:
		case <-ctx.Done():
			if err == nil {
				err = ctx.Err()
			}
			return err
		}
	}
	s.tcpWG.Wait()
	s.closeOnce.Do(func() {
		for _, p := range s.pipes {
			close(p)
		}
	})

	foldsDone := make(chan struct{})
	go func() {
		s.foldWG.Wait()
		close(foldsDone)
	}()
	select {
	case <-foldsDone:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	select {
	case serr := <-s.servErr:
		if err == nil {
			err = serr
		}
	default:
	}
	// Persist the knowledge store after the drain, so everything the
	// final batches taught survives the restart. The periodic persister
	// is joined first: a slow in-flight periodic save finishing after
	// this one would otherwise rename a stale pre-drain snapshot over
	// the final state.
	s.persistWG.Wait()
	if s.cfg.ProfilesPath != "" {
		if serr := s.punc.Store().SaveFile(s.cfg.ProfilesPath); serr != nil {
			s.metrics.ProfileSaveErrors.Add(1)
			if err == nil {
				err = serr
			}
		} else {
			s.metrics.ProfileSaves.Add(1)
		}
	}
	return err
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	// The increment must precede the draining check: Shutdown sets
	// draining before polling the counter, so any handler it misses is
	// one that will observe draining and never touch the pipes.
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBatchBytes)
	// Dispatch on Content-Type: the framed binary wire rides the same
	// endpoint as JSON lines, so a device can switch wires without a
	// config change server-side.
	var batch []Summary
	var err error
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	if strings.EqualFold(strings.TrimSpace(ct), BinaryContentType) {
		batch, err = DecodeBinaryBatch(body, s.cfg.MaxBatchSummaries, 0)
	} else {
		batch, err = DecodeBatch(body, s.cfg.MaxBatchSummaries)
	}
	if err != nil {
		// An oversized batch is valid data that needs splitting, not
		// wire corruption — 413 tells the client to re-post in chunks
		// instead of discarding its summaries. Everything else —
		// corruption, caps like ErrFrameTooBig, validation — is a 400:
		// the frame itself is unacceptable, re-sending it won't help.
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.metrics.OversizedBatches.Add(1)
			http.Error(w, fmt.Sprintf("batch exceeds %d bytes; split and re-post", s.cfg.MaxBatchBytes),
				http.StatusRequestEntityTooLarge)
			return
		}
		s.metrics.BadBatches.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if s.enqueue(batch) {
		s.metrics.AcceptedBatches.Add(1)
		s.metrics.AcceptedSummaries.Add(int64(len(batch)))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		// strconv instead of Fprintf: the ack is written once per
		// accepted batch on the hottest handler, and fmt's interface
		// boxing shows up at fold speed.
		var ack [32]byte
		resp := append(ack[:0], `{"accepted":`...)
		resp = strconv.AppendInt(resp, int64(len(batch)), 10)
		w.Write(append(resp, '}', '\n'))
	} else {
		// Backpressure: the fold stage is behind; shed load at the edge
		// rather than buffering unboundedly.
		s.metrics.RejectedBatches.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "ingest queue full", http.StatusServiceUnavailable)
	}
}

// TrackStats is the derived view of one observation track (raw or
// punctured), in the paper's milliseconds. Percentiles come from the
// track's quantile sketch when present (unclamped, accurate past the
// histogram range); HistUnder/HistOver surface the fixed-range
// histogram's out-of-range mass so a saturated histogram tail — which
// used to be silently reported as exactly 500 ms — is visible in the
// schema, and TailSaturated marks percentiles that still had to come
// from a saturated histogram.
type TrackStats struct {
	Samples  int64   `json:"samples"`
	MeanMS   float64 `json:"mean_ms"`
	StddevMS float64 `json:"stddev_ms"`
	MinMS    float64 `json:"min_ms"`
	MaxMS    float64 `json:"max_ms"`
	P50MS    float64 `json:"p50_ms"`
	P90MS    float64 `json:"p90_ms"`
	P99MS    float64 `json:"p99_ms"`
	// HistUnder / HistOver count observations outside the histogram's
	// [0, 500 ms) range.
	HistUnder int64 `json:"hist_under,omitempty"`
	HistOver  int64 `json:"hist_over,omitempty"`
	// TailSaturated is set when no covering sketch was available and
	// HistOver > 0: percentiles came from a histogram whose range
	// overflowed, so any percentile value sitting at the range cap is a
	// clamp, not a measurement.
	TailSaturated bool `json:"tail_saturated,omitempty"`
	// P99RankErr is the sketch's documented rank-error bound at q=0.99
	// (0 when percentiles came from the histogram). Normally ~0.003 at
	// the default compression; visibly larger when coarse device-posted
	// sketches were merged into the cell.
	P99RankErr float64 `json:"p99_rank_err,omitempty"`
}

func trackStats(m agg.Moments, h *agg.Hist, sk *agg.Sketch) TrackStats {
	ms := func(f float64) float64 { return f / float64(time.Millisecond) }
	t := TrackStats{Samples: m.N, MeanMS: ms(m.Mean), StddevMS: ms(m.Stddev())}
	if m.N > 0 {
		t.MinMS, t.MaxMS = ms(m.MinV), ms(m.MaxV)
	}
	if h != nil {
		t.HistUnder, t.HistOver = h.Under, h.Over
	}
	switch {
	// The sketch serves percentiles only when it covers every folded
	// observation — a cell merged from pre-sketch records falls back to
	// the histogram rather than serving a subset's quantiles as the
	// distribution's.
	case sk != nil && sk.Count > 0 && sk.Count == m.N:
		t.P50MS = ms(sk.Quantile(0.50))
		t.P90MS = ms(sk.Quantile(0.90))
		t.P99MS = ms(sk.Quantile(0.99))
		t.P99RankErr = sk.QuantileErrorBound(0.99)
	case h != nil:
		t.P50MS = ms(float64(h.Quantile(0.50)))
		t.P90MS = ms(float64(h.Quantile(0.90)))
		t.P99MS = ms(float64(h.Quantile(0.99)))
		t.TailSaturated = h.Over > 0
	}
	return t
}

// CellStats is the queryable derived view of one aggregate cell.
type CellStats struct {
	Key                Key        `json:"key"`
	Sessions           int64      `json:"sessions"`
	ProbesSent         int64      `json:"probes_sent"`
	ProbesLost         int64      `json:"probes_lost"`
	LossRate           float64    `json:"loss_rate"`
	BackgroundSent     int64      `json:"background_sent"`
	Raw                TrackStats `json:"raw"`
	Punctured          TrackStats `json:"punctured"`
	CorrectionMeanMS   float64    `json:"correction_mean_ms"`
	InflationMean      float64    `json:"inflation_mean"`
	UserOverheadMS     float64    `json:"user_overhead_mean_ms"`
	SDIOOverheadMS     float64    `json:"sdio_overhead_mean_ms"`
	PSMInflationMS     float64    `json:"psm_inflation_mean_ms"`
	PSMActiveSessions  int64      `json:"psm_active_sessions"`
	CalibratedSessions int64      `json:"calibrated_sessions"`
	ReportedSessions   int64      `json:"reported_sessions"`
	LearnedSessions    int64      `json:"learned_sessions"`
	FamilySessions     int64      `json:"family_sessions,omitempty"`
	GlobalSessions     int64      `json:"global_sessions,omitempty"`
	Uncorrected        int64      `json:"uncorrected_sessions"`
}

// StatsFor derives the view of one cell.
func StatsFor(c *Cell) CellStats {
	ms := func(f float64) float64 { return f / float64(time.Millisecond) }
	return CellStats{
		Key:                c.Key,
		Sessions:           c.Sessions,
		ProbesSent:         c.ProbesSent,
		ProbesLost:         c.ProbesLost,
		LossRate:           c.LossRate(),
		BackgroundSent:     c.BackgroundSent,
		Raw:                trackStats(c.Raw, c.RawHist, c.RawSketch),
		Punctured:          trackStats(c.Punctured, c.PuncturedHist, c.PuncturedSketch),
		CorrectionMeanMS:   ms(c.Correction.Mean),
		InflationMean:      c.Inflation.Mean,
		UserOverheadMS:     ms(c.UserOverhead.Mean),
		SDIOOverheadMS:     ms(c.SDIOOverhead.Mean),
		PSMInflationMS:     ms(c.PSMInflation.Mean),
		PSMActiveSessions:  c.PSMActiveSessions,
		CalibratedSessions: c.CalibratedSessions,
		ReportedSessions:   c.ReportedSessions,
		LearnedSessions:    c.LearnedSessions,
		FamilySessions:     c.FamilySessions,
		GlobalSessions:     c.GlobalSessions,
		Uncorrected:        c.UncorrectedSessions,
	}
}

// StatsResponse is the /stats JSON payload. Counters carries the
// server's operational counters (the /healthz set), including the
// knowledge-store profile_rejections — models the learned-table cap
// refused are visible here instead of silently dropped.
type StatsResponse struct {
	Rollup   Rollup           `json:"rollup"`
	WindowMS int64            `json:"window_ms"`
	Cells    []CellStats      `json:"cells"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// StatsQuery derives the /stats view. The by=cell path computes each
// cell's derived stats under the stripe lock rather than deep-cloning
// every histogram (~17 KiB per cell) only to read three quantiles —
// with the store near its cell cap that clone would be hundreds of MiB
// of transient allocation per dashboard poll. Merging rollups go
// through Query, which already merges without cloning.
func (st *Store) StatsQuery(r Rollup) ([]CellStats, error) {
	if r == RollupCell {
		var out []CellStats
		for i := range st.shards {
			sh := &st.shards[i]
			sh.mu.Lock()
			for _, c := range sh.cells {
				out = append(out, StatsFor(c))
			}
			sh.mu.Unlock()
		}
		st.rollupMu.Lock()
		for _, c := range st.rollups {
			out = append(out, StatsFor(c))
		}
		st.rollupMu.Unlock()
		sortCellStats(out)
		return out, nil
	}
	cells, err := st.Query(r)
	if err != nil {
		return nil, err
	}
	out := make([]CellStats, 0, len(cells))
	for _, c := range cells {
		out = append(out, StatsFor(c))
	}
	return out, nil
}

// cellFilter is the key filter /stats and /v1/stream share: empty
// fields match everything; set fields must match exactly.
type cellFilter struct {
	device, group, scenario string
}

func filterFromQuery(q map[string][]string) cellFilter {
	get := func(k string) string {
		if v := q[k]; len(v) > 0 {
			return v[0]
		}
		return ""
	}
	return cellFilter{device: get("device"), group: get("group"), scenario: get("scenario")}
}

func (f cellFilter) empty() bool { return f == cellFilter{} }

func (f cellFilter) match(k Key) bool {
	if f.device != "" && k.Device != f.device {
		return false
	}
	if f.group != "" && k.Group != f.group {
		return false
	}
	if f.scenario != "" && k.Scenario != f.scenario {
		return false
	}
	return true
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	rollup, err := ParseRollup(r.URL.Query().Get("by"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cellStats, err := s.statsQuery(rollup)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if f := filterFromQuery(r.URL.Query()); !f.empty() {
		kept := cellStats[:0]
		for _, c := range cellStats {
			if f.match(c.Key) {
				kept = append(kept, c)
			}
		}
		cellStats = kept
	}
	resp := StatsResponse{Rollup: rollup, WindowMS: s.store.windowMS, Cells: cellStats,
		Counters: s.MetricsSnapshot()}
	if strings.EqualFold(r.URL.Query().Get("format"), "table") {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, RenderStats(resp))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

// RenderStats renders a stats response as a paper-style table: raw and
// punctured delay side by side, plus the applied correction and its
// provenance. Percentiles are sketch-backed; the ">range" column shows
// each track's histogram overflow mass (raw/punctured), and a
// percentile that came from a saturated histogram (no sketch, overflow
// present) and sits at the range cap is suffixed "!" — that value is a
// clamp, not a measurement. Percentiles below the cap are genuine even
// on the histogram path.
func RenderStats(resp StatsResponse) string {
	t := report.NewTable(
		fmt.Sprintf("Live ingest aggregates by %s (durations in ms; raw = as reported, punctured = de-inflated).", resp.Rollup),
		"Cell", "Sessions", "Probes", "Loss",
		"raw mean±sd", "raw p50", "raw p90", "raw p99",
		"punct mean", "p50", "p90", "p99",
		">range r/p", "corr", "src r/l/f/g/n", "PSM act.")
	f2 := func(f float64) string { return fmt.Sprintf("%.2f", f) }
	capMS := float64(agg.DurationHistHi) / float64(time.Millisecond)
	fp := func(tr TrackStats, v float64) string {
		if tr.TailSaturated && v >= capMS {
			return fmt.Sprintf("%.2f!", v)
		}
		return fmt.Sprintf("%.2f", v)
	}
	for _, c := range resp.Cells {
		label := cellLabel(c.Key, resp.Rollup)
		t.AddRow(label,
			fmt.Sprintf("%d", c.Sessions),
			fmt.Sprintf("%d", c.ProbesSent),
			fmt.Sprintf("%.1f%%", c.LossRate*100),
			fmt.Sprintf("%s±%s", f2(c.Raw.MeanMS), f2(c.Raw.StddevMS)),
			fp(c.Raw, c.Raw.P50MS), fp(c.Raw, c.Raw.P90MS), fp(c.Raw, c.Raw.P99MS),
			f2(c.Punctured.MeanMS),
			fp(c.Punctured, c.Punctured.P50MS), fp(c.Punctured, c.Punctured.P90MS), fp(c.Punctured, c.Punctured.P99MS),
			fmt.Sprintf("%d/%d", c.Raw.HistOver, c.Punctured.HistOver),
			f2(c.CorrectionMeanMS),
			fmt.Sprintf("%d/%d/%d/%d/%d", c.ReportedSessions, c.LearnedSessions,
				c.FamilySessions, c.GlobalSessions, c.Uncorrected),
			fmt.Sprintf("%d/%d", c.PSMActiveSessions, c.Sessions))
	}
	out := t.String()
	// Footer: where the history that is *not* in the table went. Only
	// pruned cells are loss; compacted/evicted cells live on in rollups.
	if c := resp.Counters; c != nil {
		out += fmt.Sprintf(
			"retention: compacted=%d cells (%d sessions, lossless) evicted=%d rollups=%d pruned=%d (lossy) cap-dropped=%d summaries\n",
			c["compacted_cells"], c["compacted_sessions"], c["evicted_cells"],
			c["rollup_cells"], c["pruned_cells"], c["dropped_summaries"])
		// On a clustered node the table above is fleet-wide; say which
		// sessions this node folded itself vs received via gossip.
		if peers, ok := c["cluster_peers"]; ok {
			out += fmt.Sprintf(
				"cluster: local=%d sessions (folded here) replicated=%d sessions in %d cells from %d/%d live peer(s)\n",
				c["folded_summaries"], c["cluster_replicated_sessions"],
				c["cluster_replica_cells"], c["cluster_peers_alive"], peers)
		}
	}
	return out
}

func cellLabel(k Key, r Rollup) string {
	switch r {
	case RollupGroup:
		return k.Group
	case RollupDevice:
		return k.Device
	case RollupWindow:
		if k.WindowMS < 0 {
			return "all-time" // identity-collapsed overflow rollup
		}
		return time.UnixMilli(k.WindowMS).UTC().Format("15:04:05")
	default:
		parts := []string{k.Group}
		if k.Device != k.Group {
			parts = append(parts, k.Device)
		}
		if k.Scenario != "" {
			parts = append(parts, k.Scenario)
		}
		if k.WindowMS < 0 {
			parts = append(parts, "all-time")
		} else if k.WindowMS != 0 {
			parts = append(parts, time.UnixMilli(k.WindowMS).UTC().Format("15:04:05"))
		}
		return strings.Join(parts, "/")
	}
}

// ModelsResponse is the /models JSON payload: the calibration database
// plus the learned per-model overhead profiles driving live puncturing.
type ModelsResponse struct {
	Registry []core.RegistryEntry `json:"registry"`
	Learned  []ModelOverhead      `json:"learned"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	// Both halves come from the one knowledge store: the calibration
	// view and the learned-overhead projection.
	resp := ModelsResponse{Learned: s.punc.Overheads()}
	if reg := s.punc.Registry(); reg != nil {
		resp.Registry = reg.Snapshot().Entries()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

// ProfilesResponse is the /v1/profiles GET payload: the whole
// device-knowledge store — per-model calibrated timers + learned
// overheads + sample counts (the snapshot), plus how many corrections
// each resolution-ladder rung has served.
type ProfilesResponse struct {
	*puncture.Snapshot
	Models   int              `json:"models"`
	Resolved map[string]int64 `json:"resolved_by_source"`
}

// maxProfileDeltaBytes caps a POSTed fleet delta; a snapshot of the
// full default model cap fits comfortably.
const maxProfileDeltaBytes = 64 << 20

// handleProfiles serves the knowledge store (GET) and merges a fleet
// campaign's profile delta into it (POST of a puncture.Snapshot — the
// exact bytes `acutemon-fleet -profiles` writes).
func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		st := s.punc.Store()
		resp := ProfilesResponse{
			Snapshot: st.Snapshot(),
			Models:   st.Len(),
			Resolved: st.ResolvedBySource(),
		}
		// Clustered servers answer for the whole fleet: the local
		// snapshot merged with every peer's replicated knowledge.
		// ?scope=local keeps the single-node view (it is what the gossip
		// rounds themselves exchange — a fleet-merged response here must
		// never feed back into gossip or models would double-count).
		if src := s.replicaSource(); src != nil && !strings.EqualFold(r.URL.Query().Get("scope"), "local") {
			if snap, models, err := fleetProfiles(st, src); err == nil {
				resp.Snapshot = snap
				resp.Models = models
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
	case http.MethodPost:
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		if s.draining.Load() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		body := http.MaxBytesReader(w, r.Body, maxProfileDeltaBytes)
		snap, err := puncture.ReadSnapshot(body)
		if err != nil {
			s.metrics.BadBatches.Add(1)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.punc.Store().MergeSnapshot(snap); err != nil {
			s.metrics.BadBatches.Add(1)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.metrics.ProfileMerges.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"merged_profiles":%d,"models":%d}`+"\n", len(snap.Profiles), s.punc.Store().Len())
	default:
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	payload := map[string]any{
		"status":    status,
		"uptime_ms": time.Since(s.started).Milliseconds(),
		// queue_* keep their names across the pipeline refactor: len is
		// outstanding batch credits, cap the credit pool.
		"queue_len": len(s.credits),
		"queue_cap": cap(s.credits),
		"window_ms": s.store.windowMS,
		"cells":     s.store.Cells(),
		// Retention + stream gauges: resident fine cells vs their cap,
		// the rollup tier holding compacted history, and live stream
		// subscribers.
		"max_cells":    s.store.MaxCells(),
		"rollup_cells": s.store.RollupCells(),
		"rollup_ms":    s.store.RollupWindow(),
		"subscribers":  s.streamSubscribers(),
		"counters":     s.MetricsSnapshot(),
	}
	// Clustered servers report per-peer liveness and last-merge epochs,
	// so one /healthz poll shows whether the fleet view is current.
	if src := s.replicaSource(); src != nil {
		payload["cluster"] = src.Health()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(payload)
}

// boundedListener caps concurrently open accepted connections: Accept
// blocks while MaxConns connections are alive, pushing connect-level
// backpressure into the kernel accept queue instead of the heap.
type boundedListener struct {
	net.Listener
	sem chan struct{}
}

func (l *boundedListener) Accept() (net.Conn, error) {
	l.sem <- struct{}{}
	c, err := l.Listener.Accept()
	if err != nil {
		<-l.sem
		return nil, err
	}
	return &boundedConn{Conn: c, release: func() { <-l.sem }}, nil
}

type boundedConn struct {
	net.Conn
	once    sync.Once
	release func()
}

func (c *boundedConn) Close() error {
	err := c.Conn.Close()
	c.once.Do(c.release)
	return err
}
